//! Dense matrices and reference algorithms.
//!
//! The dense representation exists to *verify* the sparse machinery: dense
//! Gaussian elimination, dense LU and dense solves are the oracles against
//! which the sparse LU engine and Bennett updates are tested.  It is also used
//! by the benchmark that reproduces the paper's §1 claim that a decomposed
//! solve is orders of magnitude faster than repeated Gaussian elimination.

use crate::error::{SparseError, SparseResult};

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        DenseMatrix {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major nested vector.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map(Vec::len).unwrap_or(0);
        assert!(rows.iter().all(|r| r.len() == n_cols), "ragged rows");
        DenseMatrix {
            n_rows,
            n_cols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n_cols + j]
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n_cols + j] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n_cols + j] += v;
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.n_cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.n_rows];
        for i in 0..self.n_rows {
            let mut acc = 0.0;
            for j in 0..self.n_cols {
                acc += self.get(i, j) * x[j];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Matrix-matrix product `self * other`.
    pub fn mul(&self, other: &DenseMatrix) -> SparseResult<DenseMatrix> {
        if self.n_cols != other.n_rows {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (other.n_rows, other.n_cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.n_rows, other.n_cols);
        for i in 0..self.n_rows {
            for k in 0..self.n_cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.n_cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry-wise difference to another matrix.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> SparseResult<f64> {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (other.n_rows, other.n_cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// This is the reference "GE per query" approach of the paper's §1.
    pub fn solve_gaussian(&self, b: &[f64]) -> SparseResult<Vec<f64>> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::NotSquare {
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        if b.len() != self.n_rows {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (b.len(), 1),
            });
        }
        let n = self.n_rows;
        let mut a = self.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            // Partial pivoting.
            let mut pivot_row = k;
            let mut best = a.get(k, k).abs();
            for i in k + 1..n {
                let cand = a.get(i, k).abs();
                if cand > best {
                    best = cand;
                    pivot_row = i;
                }
            }
            if best == 0.0 {
                return Err(SparseError::InvalidPermutation {
                    len: n,
                    reason: "matrix is singular to working precision",
                });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = a.get(k, j);
                    a.set(k, j, a.get(pivot_row, j));
                    a.set(pivot_row, j, tmp);
                }
                x.swap(k, pivot_row);
            }
            let pivot = a.get(k, k);
            for i in k + 1..n {
                let factor = a.get(i, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in k..n {
                    a.add_to(i, j, -factor * a.get(k, j));
                }
                x[i] -= factor * x[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut acc = x[k];
            for j in k + 1..n {
                acc -= a.get(k, j) * x[j];
            }
            x[k] = acc / a.get(k, k);
        }
        Ok(x)
    }

    /// Doolittle LU decomposition without pivoting: `A = L U` with unit lower
    /// triangular `L` and upper triangular `U`.
    ///
    /// Returns an error if a zero pivot is encountered, exactly as the sparse
    /// engine would.  Used as the dense oracle for the sparse factorization.
    pub fn lu_no_pivoting(&self) -> SparseResult<(DenseMatrix, DenseMatrix)> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::NotSquare {
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        let n = self.n_rows;
        let mut l = DenseMatrix::identity(n);
        let mut u = DenseMatrix::zeros(n, n);
        for i in 0..n {
            // Row i of U.
            for j in i..n {
                let mut sum = self.get(i, j);
                for k in 0..i {
                    sum -= l.get(i, k) * u.get(k, j);
                }
                u.set(i, j, sum);
            }
            let pivot = u.get(i, i);
            if pivot == 0.0 {
                return Err(SparseError::InvalidPermutation {
                    len: n,
                    reason: "zero pivot in LU decomposition",
                });
            }
            // Column i of L.
            for j in i + 1..n {
                let mut sum = self.get(j, i);
                for k in 0..i {
                    sum -= l.get(j, k) * u.get(k, i);
                }
                l.set(j, i, sum / pivot);
            }
        }
        Ok((l, u))
    }

    /// Computes the inverse via Gaussian elimination; used only in examples
    /// and tests that illustrate why inversion is impractical for sparse work
    /// (the inverse is dense, as the paper's §2.1 points out).
    pub fn inverse(&self) -> SparseResult<DenseMatrix> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::NotSquare {
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        let n = self.n_rows;
        let mut inv = DenseMatrix::zeros(n, n);
        for col in 0..n {
            let mut e = vec![0.0; n];
            e[col] = 1.0;
            let x = self.solve_gaussian(&e)?;
            for row in 0..n {
                inv.set(row, col, x[row]);
            }
        }
        Ok(inv)
    }

    /// Fraction of entries that are non-zero (density); illustrates the
    /// fill-in discussion of the paper's preliminaries.
    pub fn density(&self, tol: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nz = self.data.iter().filter(|v| v.abs() > tol).count();
        nz as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![4.0, 1.0, 0.0],
            vec![2.0, 5.0, 1.0],
            vec![0.0, 1.0, 3.0],
        ])
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        m.add_to(1, 2, 1.0);
        assert_eq!(m.get(1, 2), 8.0);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        DenseMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn mul_vec_and_mul() {
        let m = sample();
        let x = vec![1.0, 1.0, 1.0];
        assert_eq!(m.mul_vec(&x).unwrap(), vec![5.0, 8.0, 4.0]);
        let id = DenseMatrix::identity(3);
        assert_eq!(m.mul(&id).unwrap(), m);
        assert!(m.mul(&DenseMatrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn solve_gaussian_recovers_solution() {
        let m = sample();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = m.mul_vec(&x_true).unwrap();
        let x = m.solve_gaussian(&b).unwrap();
        for (a, b) in x.iter().zip(x_true.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_gaussian_rejects_singular() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(m.solve_gaussian(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_gaussian_requires_square_and_matching_rhs() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(m.solve_gaussian(&[1.0, 2.0]).is_err());
        let sq = sample();
        assert!(sq.solve_gaussian(&[1.0]).is_err());
    }

    #[test]
    fn lu_reconstructs_matrix() {
        let m = sample();
        let (l, u) = m.lu_no_pivoting().unwrap();
        let prod = l.mul(&u).unwrap();
        assert!(prod.max_abs_diff(&m).unwrap() < 1e-12);
        // L is unit lower triangular, U upper triangular.
        for i in 0..3 {
            assert_eq!(l.get(i, i), 1.0);
            for j in i + 1..3 {
                assert_eq!(l.get(i, j), 0.0);
            }
            for j in 0..i {
                assert_eq!(u.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn lu_zero_pivot_errors() {
        let m = DenseMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(m.lu_no_pivoting().is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let m = sample();
        let inv = m.inverse().unwrap();
        let prod = m.mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn density_counts_nonzeros() {
        let m = sample();
        assert!((m.density(0.0) - 7.0 / 9.0).abs() < 1e-12);
        assert_eq!(DenseMatrix::zeros(0, 0).density(0.0), 0.0);
    }
}
