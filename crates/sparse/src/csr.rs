//! Compressed sparse row (CSR) matrices.
//!
//! [`CsrMatrix`] is the workhorse read-only representation used throughout the
//! reproduction: every matrix `A_i` of an evolving matrix sequence is a CSR
//! matrix.  It supports the operations the CLUDE algorithms need: pattern
//! extraction, reordering by an [`crate::perm::Ordering`], matrix-vector
//! products, entry lookup, deltas between successive snapshots and conversion
//! to/from the assembly and dense formats.

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use crate::error::{SparseError, SparseResult};
use crate::pattern::SparsityPattern;
use crate::perm::Ordering;

/// CSC-like per-column entry lists (row-sorted `(row, value)` pairs), as
/// returned by [`CsrMatrix::split_columns`].
pub type ColumnEntries = Vec<Vec<(usize, f64)>>;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a triplet matrix, summing duplicates.
    ///
    /// Entries whose accumulated value is exactly `0.0` are *kept* so that the
    /// structural pattern of an assembled matrix is reproducible; use
    /// [`CsrMatrix::prune`] to drop them when required.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let n_rows = coo.n_rows();
        let n_cols = coo.n_cols();
        // Count entries per row (with duplicates), then merge per row.
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_rows];
        for (r, c, v) in coo.iter() {
            per_row[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < row.len() {
                let col = row[k].0;
                let mut sum = 0.0;
                while k < row.len() && row[k].0 == col {
                    sum += row[k].1;
                    k += 1;
                }
                col_idx.push(col);
                values.push(sum);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    /// Debug-asserts the CSR invariants (monotone `row_ptr`, sorted column
    /// indices per row, matching lengths).
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), n_rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        #[cfg(debug_assertions)]
        for r in 0..n_rows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]));
            debug_assert!(row.iter().all(|&c| c < n_cols));
        }
        CsrMatrix {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The value at `(i, j)`, or `0.0` when the position is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i >= self.n_rows {
            return 0.0;
        }
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Overwrites the value of the stored entry at `(i, j)` in place.
    /// Returns `false` (and changes nothing) when the position is not part
    /// of the stored pattern — the pattern itself never changes.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> bool {
        if i >= self.n_rows {
            return false;
        }
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(pos) => {
                self.values[lo + pos] = value;
                true
            }
            Err(_) => false,
        }
    }

    /// The stored entries of row `i` as parallel slices `(columns, values)`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates over all stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n_rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (i, c, v))
        })
    }

    /// The sparsity pattern `sp(A)` of the stored entries.
    pub fn pattern(&self) -> SparsityPattern {
        let rows = (0..self.n_rows)
            .map(|i| self.row(i).0.to_vec())
            .collect::<Vec<_>>();
        SparsityPattern::from_sorted_rows(self.n_cols, rows)
    }

    /// Removes stored entries with magnitude at most `tol` (but always keeps
    /// explicitly stored diagonal entries so factorizations stay well posed).
    pub fn prune(&self, tol: f64) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for (i, j, v) in self.iter() {
            if v.abs() > tol || i == j {
                coo.push(i, j, v).expect("indices are in bounds");
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Matrix-vector product `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.n_cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.n_rows];
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc += v * x[c];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Transposed-matrix-vector product `y = Aᵀ x`.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        if x.len() != self.n_rows {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_cols, self.n_rows),
                right: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.n_cols];
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                y[c] += v * x[i];
            }
        }
        Ok(y)
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n_cols, self.n_rows, self.nnz());
        for (i, j, v) in self.iter() {
            coo.push(j, i, v).expect("indices are in bounds");
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Element-wise linear combination `alpha * self + beta * other`.
    pub fn add_scaled(&self, alpha: f64, other: &CsrMatrix, beta: f64) -> SparseResult<CsrMatrix> {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (other.n_rows, other.n_cols),
            });
        }
        let mut coo = CooMatrix::with_capacity(self.n_rows, self.n_cols, self.nnz() + other.nnz());
        for (i, j, v) in self.iter() {
            coo.push(i, j, alpha * v)?;
        }
        for (i, j, v) in other.iter() {
            coo.push(i, j, beta * v)?;
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// The entry-wise difference `other - self` as a list of `(row, col,
    /// old_value, new_value)` for every position where the two matrices differ
    /// structurally or numerically (beyond `tol`).
    ///
    /// This is the `ΔA` consumed by Bennett's algorithm when moving from one
    /// snapshot matrix to the next.
    pub fn delta_to(
        &self,
        other: &CsrMatrix,
        tol: f64,
    ) -> SparseResult<Vec<(usize, usize, f64, f64)>> {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (other.n_rows, other.n_cols),
            });
        }
        let mut out = Vec::new();
        for i in 0..self.n_rows {
            let (ca, va) = self.row(i);
            let (cb, vb) = other.row(i);
            let (mut ia, mut ib) = (0, 0);
            while ia < ca.len() || ib < cb.len() {
                if ib >= cb.len() || (ia < ca.len() && ca[ia] < cb[ib]) {
                    if va[ia].abs() > tol {
                        out.push((i, ca[ia], va[ia], 0.0));
                    }
                    ia += 1;
                } else if ia >= ca.len() || cb[ib] < ca[ia] {
                    if vb[ib].abs() > tol {
                        out.push((i, cb[ib], 0.0, vb[ib]));
                    }
                    ib += 1;
                } else {
                    if (va[ia] - vb[ib]).abs() > tol {
                        out.push((i, ca[ia], va[ia], vb[ib]));
                    }
                    ia += 1;
                    ib += 1;
                }
            }
        }
        Ok(out)
    }

    /// Applies an ordering `O = (P, Q)`, producing `A^O = P A Q`.
    ///
    /// With the convention of [`crate::perm::Permutation`], entry `(i, j)` of
    /// the result is entry `(P.new_to_old(i), Q.new_to_old(j))` of `self`.
    pub fn reorder(&self, ordering: &Ordering) -> SparseResult<CsrMatrix> {
        if ordering.row().len() != self.n_rows || ordering.col().len() != self.n_cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (ordering.row().len(), ordering.col().len()),
            });
        }
        let col_old_to_new = ordering.col().old_to_new();
        let mut coo = CooMatrix::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for new_i in 0..self.n_rows {
            let old_i = ordering.row().new_to_old(new_i);
            let (cols, vals) = self.row(old_i);
            for (&old_j, &v) in cols.iter().zip(vals.iter()) {
                coo.push(new_i, col_old_to_new[old_j], v)?;
            }
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Converts to a dense matrix (intended for tests and small examples).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for (i, j, v) in self.iter() {
            d.set(i, j, v);
        }
        d
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scales every stored value by `s`.
    pub fn scale(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Per-column absolute-value sums `w_j = Σ_i |a_ij|`.
    ///
    /// This is the "heat" of a column: the engine's coupling solvers rank the
    /// cross-shard columns by this weight when deciding which of them a
    /// low-rank (Woodbury) correction should capture — the heavier a column,
    /// the more it slows the iterative fallback that handles the remainder.
    pub fn col_abs_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.n_cols];
        for (&c, &v) in self.col_idx.iter().zip(self.values.iter()) {
            sums[c] += v.abs();
        }
        sums
    }

    /// Splits the matrix by columns: the stored entries of each selected
    /// column in CSC-like per-column form (row-sorted `(row, value)` lists,
    /// parallel to `cols`), plus the remainder matrix with the selected
    /// columns removed.  The selection must be in range and duplicate-free
    /// (a duplicate would leave one of its slots silently empty); selection
    /// errors carry the offending column in their `col` field — the `row`
    /// field is zero, since only columns are validated here.
    ///
    /// One pass over the CSR storage extracts both halves, so pulling the `k`
    /// hottest coupling columns out for a low-rank correction costs `O(nnz)`,
    /// not `k` column searches.
    pub fn split_columns(&self, cols: &[usize]) -> SparseResult<(ColumnEntries, CsrMatrix)> {
        // Map column id -> position in `cols` (None = stays in the remainder).
        let mut selected: Vec<Option<usize>> = vec![None; self.n_cols];
        for (k, &c) in cols.iter().enumerate() {
            if c >= self.n_cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: 0,
                    col: c,
                    n_rows: self.n_rows,
                    n_cols: self.n_cols,
                });
            }
            if selected[c].is_some() {
                return Err(SparseError::DuplicateEntry { row: 0, col: c });
            }
            selected[c] = Some(k);
        }
        let mut extracted: Vec<Vec<(usize, f64)>> = vec![Vec::new(); cols.len()];
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..self.n_rows {
            let (rc, rv) = self.row(i);
            for (&c, &v) in rc.iter().zip(rv.iter()) {
                match selected[c] {
                    // Rows are visited in order, so each column list ends up
                    // row-sorted for free.
                    Some(k) => extracted[k].push((i, v)),
                    None => {
                        col_idx.push(c);
                        values.push(v);
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        let rest = CsrMatrix::from_raw_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values);
        Ok((extracted, rest))
    }

    /// Maximum absolute difference between two matrices over the union of
    /// their patterns.  Useful for approximate equality in tests.
    pub fn max_abs_diff(&self, other: &CsrMatrix) -> SparseResult<f64> {
        let delta = self.delta_to(other, 0.0)?;
        Ok(delta
            .iter()
            .map(|&(_, _, a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::Permutation;

    fn sample() -> CsrMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut coo = CooMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 2.0),
            (0, 2, 1.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(1, 1), -1.0);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let m = sample();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
        assert_eq!(m.get(9, 9), 0.0);
    }

    #[test]
    fn identity_matrix() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = m.mul_vec(&x).unwrap();
        assert_eq!(
            y,
            vec![2.0 * 1.0 + 1.0 * 3.0, 3.0 * 2.0, 4.0 * 1.0 + 5.0 * 3.0]
        );
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn mul_vec_transposed_matches_transpose() {
        let m = sample();
        let x = vec![1.0, -1.0, 2.0];
        let a = m.mul_vec_transposed(&x).unwrap();
        let b = m.transpose().mul_vec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn col_abs_sums_accumulate_magnitudes() {
        let m = sample();
        assert_eq!(m.col_abs_sums(), vec![6.0, 3.0, 6.0]);
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 1, -2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        assert_eq!(
            CsrMatrix::from_coo(&coo).col_abs_sums(),
            vec![0.0, 5.0, 0.0]
        );
    }

    #[test]
    fn split_columns_partitions_the_entries() {
        let m = sample();
        let (cols, rest) = m.split_columns(&[2, 0]).unwrap();
        // Requested order preserved; each list row-sorted.
        assert_eq!(cols[0], vec![(0, 1.0), (2, 5.0)]);
        assert_eq!(cols[1], vec![(0, 2.0), (2, 4.0)]);
        assert_eq!(rest.nnz(), 1);
        assert_eq!(rest.get(1, 1), 3.0);
        assert_eq!(rest.n_rows(), 3);
        assert_eq!(rest.n_cols(), 3);
        // Extracted columns + remainder reassemble the matrix.
        let mut coo = CooMatrix::new(3, 3);
        for (k, &j) in [2usize, 0].iter().enumerate() {
            for &(i, v) in &cols[k] {
                coo.push(i, j, v).unwrap();
            }
        }
        for (i, j, v) in rest.iter() {
            coo.push(i, j, v).unwrap();
        }
        assert_eq!(CsrMatrix::from_coo(&coo), m);
        // No columns selected: everything stays in the remainder.
        let (none, all) = m.split_columns(&[]).unwrap();
        assert!(none.is_empty());
        assert_eq!(all, m);
        // Out-of-range and duplicate selections are rejected.
        assert!(m.split_columns(&[7]).is_err());
        assert!(matches!(
            m.split_columns(&[2, 2]),
            Err(SparseError::DuplicateEntry { col: 2, .. })
        ));
    }

    #[test]
    fn pattern_matches_entries() {
        let m = sample();
        let p = m.pattern();
        assert_eq!(p.nnz(), 5);
        assert!(p.contains(2, 0));
        assert!(!p.contains(0, 1));
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_scaled_combines_entries() {
        let m = sample();
        let s = m.add_scaled(1.0, &m, 1.0).unwrap();
        assert_eq!(s.get(0, 0), 4.0);
        let z = m.add_scaled(1.0, &m, -1.0).unwrap();
        assert_eq!(z.frobenius_norm(), 0.0);
    }

    #[test]
    fn delta_to_lists_changes() {
        let a = sample();
        let mut coo = CooMatrix::new(3, 3);
        for (i, j, v) in a.iter() {
            coo.push(i, j, v).unwrap();
        }
        coo.push(1, 0, 7.0).unwrap(); // new entry
        coo.push(0, 2, -1.0).unwrap(); // 1.0 -> 0.0 numeric change (sums to 0)
        let b = CsrMatrix::from_coo(&coo);
        let delta = a.delta_to(&b, 1e-12).unwrap();
        // (0,2): 1 -> 0 and (1,0): 0 -> 7
        assert!(delta.contains(&(0, 2, 1.0, 0.0)));
        assert!(delta.contains(&(1, 0, 0.0, 7.0)));
        assert_eq!(delta.len(), 2);
        assert!(a.delta_to(&a, 0.0).unwrap().is_empty());
    }

    #[test]
    fn reorder_permutes_rows_and_columns() {
        let m = sample();
        // Reverse both rows and columns.
        let p = Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let o = Ordering::new(p.clone(), p);
        let r = m.reorder(&o).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(r.get(i, j), m.get(2 - i, 2 - j));
            }
        }
    }

    #[test]
    fn reorder_identity_is_noop() {
        let m = sample();
        let o = Ordering::identity(3);
        assert_eq!(m.reorder(&o).unwrap(), m);
    }

    #[test]
    fn prune_drops_small_offdiagonal_entries() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.0).unwrap();
        coo.push(0, 1, 1e-15).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        let m = CsrMatrix::from_coo(&coo).prune(1e-12);
        assert!(m.pattern().contains(0, 0)); // diagonal kept
        assert!(!m.pattern().contains(0, 1));
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn to_dense_roundtrip_values() {
        let m = sample();
        let d = m.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = sample();
        let b = a.scale(1.0);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
        let c = a.scale(2.0);
        assert_eq!(a.max_abs_diff(&c).unwrap(), 5.0);
    }
}
