//! Error types for the sparse matrix substrate.

use std::fmt;

/// Errors produced by sparse matrix constructors and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A row or column index was outside the matrix dimensions.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows of the matrix.
        n_rows: usize,
        /// Number of columns of the matrix.
        n_cols: usize,
    },
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation {
        /// Length of the permutation.
        len: usize,
        /// Explanation of what was wrong.
        reason: &'static str,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        n_rows: usize,
        /// Number of columns.
        n_cols: usize,
    },
    /// A duplicate entry was found where entries must be unique.
    DuplicateEntry {
        /// Row of the duplicate.
        row: usize,
        /// Column of the duplicate.
        col: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows,
                n_cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for a {n_rows}x{n_cols} matrix"
            ),
            SparseError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::InvalidPermutation { len, reason } => {
                write!(f, "invalid permutation of length {len}: {reason}")
            }
            SparseError::NotSquare { n_rows, n_cols } => {
                write!(
                    f,
                    "operation requires a square matrix, got {n_rows}x{n_cols}"
                )
            }
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenience result alias used across the sparse crate.
pub type SparseResult<T> = Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            n_rows: 3,
            n_cols: 4,
        };
        assert_eq!(e.to_string(), "index (5, 7) out of bounds for a 3x4 matrix");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = SparseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
    }

    #[test]
    fn display_invalid_permutation() {
        let e = SparseError::InvalidPermutation {
            len: 4,
            reason: "index 9 out of range",
        };
        assert!(e.to_string().contains("length 4"));
    }

    #[test]
    fn display_not_square_and_duplicate() {
        assert!(SparseError::NotSquare {
            n_rows: 2,
            n_cols: 3
        }
        .to_string()
        .contains("square"));
        assert!(SparseError::DuplicateEntry { row: 1, col: 2 }
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&SparseError::NotSquare {
            n_rows: 1,
            n_cols: 2,
        });
    }
}
