//! Small dense-vector helpers shared across the workspace.
//!
//! Measures such as PageRank and RWR manipulate probability vectors; the LU
//! solvers manipulate right-hand sides and solutions.  These free functions
//! keep that code short and uniform.

/// Dot product of two equally long slices.
///
/// # Panics
/// Panics when the lengths differ (programming error, not data error).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Maximum absolute value (infinity norm).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Sum of absolute values (L1 norm).
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Maximum absolute component-wise difference between two vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Normalises a vector in place so its L1 norm is 1 (used for probability
/// distributions).  A zero vector is left untouched.
pub fn normalize_l1(x: &mut [f64]) {
    let s = norm1(x);
    if s > 0.0 {
        for v in x.iter_mut() {
            *v /= s;
        }
    }
}

/// The standard basis vector `e_i` of length `n`.
pub fn basis(n: usize, i: usize) -> Vec<f64> {
    assert!(i < n, "basis: index out of range");
    let mut v = vec![0.0; n];
    v[i] = 1.0;
    v
}

/// The constant vector with every entry `value`.
pub fn constant(n: usize, value: f64) -> Vec<f64> {
    vec![value; n]
}

/// Indices sorted by descending value; ties broken by ascending index.
/// Used to turn measure scores into ranks (paper §7 case study).
pub fn rank_descending(x: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let mut b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        axpy(2.0, &a, &mut b);
        assert_eq!(b, [6.0, 9.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn normalize_l1_makes_distribution() {
        let mut x = vec![1.0, 3.0];
        normalize_l1(&mut x);
        assert!((norm1(&x) - 1.0).abs() < 1e-15);
        assert_eq!(x, vec![0.25, 0.75]);
        let mut z = vec![0.0, 0.0];
        normalize_l1(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn basis_and_constant() {
        assert_eq!(basis(3, 1), vec![0.0, 1.0, 0.0]);
        assert_eq!(constant(2, 0.5), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        basis(2, 5);
    }

    #[test]
    fn rank_descending_orders_by_value() {
        let scores = [0.1, 0.9, 0.5, 0.9];
        // Ties (indices 1 and 3) broken by index.
        assert_eq!(rank_descending(&scores), vec![1, 3, 2, 0]);
        assert_eq!(rank_descending(&[]), Vec::<usize>::new());
    }
}
