//! Bennett's algorithm for updating triangular factors (Bennett, 1965).
//!
//! Given the factors `A = L·U` (unit lower `L`) and a rank-one modification
//! `A' = A + g·x·yᵀ`, Bennett's algorithm rewrites `L` and `U` in place into
//! the factors of `A'` by a single sweep over the pivots.  For pivot `k` with
//! old pivot value `u_kk` and new value `u'_kk = u_kk + g·x_k·y_k`:
//!
//! ```text
//! L'(i,k) = (L(i,k)·u_kk + g·y_k·x_i) / u'_kk          for i > k
//! x_i    ← x_i − x_k·L(i,k)                            (old L)
//! U'(k,j) = U(k,j) + g·x_k·y_j                         for j > k
//! y_j    ← y_j − y_k·U(k,j)/u_kk                       (old U)
//! g      ← g·u_kk / u'_kk
//! ```
//!
//! Only pivots where `x_k` or `y_k` is non-zero do any work, so a sparse
//! change to a sparse matrix touches a small part of the factors.  The sweep
//! is storage-agnostic: it runs over either the static structure (CLUDE) or
//! the dynamic adjacency lists (INC/CINC), which differ precisely in how they
//! absorb fill-ins that are not yet represented.
//!
//! The sweep itself is allocation-free in the steady state: storage back-ends
//! expose their structural columns/rows as *borrowed slices*, and all mutable
//! scratch (the dense `x`/`y` vectors, their sparse supports, the pending
//! pivot queue and the merge buffers) lives in a caller-owned
//! [`BennettWorkspace`] that is reused from one update to the next.  Dense
//! scratch is epoch-stamped, so preparing the workspace for a new update
//! costs O(support), not O(n).
//!
//! A sparse update `ΔA` of arbitrary shape is applied as a sequence of
//! rank-one updates, one per column of `ΔA` (`x` = changed column values,
//! `y = e_j`, `g = 1`), as [`apply_delta_with`] does.

// lint: hot-path

use crate::dynamic::DynamicLuFactors;
use crate::error::{LuError, LuResult};
use crate::factors::{LuFactors, SINGULAR_TOL};
use std::mem;

/// Magnitude below which a would-be fill-in outside a static structure is
/// treated as numerical noise and dropped rather than reported as an error.
pub const FILL_DROP_TOL: f64 = 1e-9;

/// Work counters for Bennett updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BennettStats {
    /// Number of rank-one updates performed.
    pub rank_one_updates: usize,
    /// Number of pivots visited across all updates.
    pub pivots_processed: usize,
    /// Number of `L`/`U` entries read or written.
    pub entries_touched: usize,
}

impl BennettStats {
    /// Accumulates another stats record into `self`.
    pub fn merge(&mut self, other: &BennettStats) {
        self.rank_one_updates += other.rank_one_updates;
        self.pivots_processed += other.pivots_processed;
        self.entries_touched += other.entries_touched;
    }
}

/// One [`BennettWorkspace`] per shard of a partitioned factor store.
///
/// A sharded store runs independent Bennett sweeps over per-shard factors —
/// possibly from different threads at once — so each shard needs scratch of
/// its own: sharing one workspace would serialize the sweeps (and corrupt the
/// epoch stamps).  This wrapper owns the per-shard workspaces, pre-sized to
/// each shard's order so sweeps are allocation-free from the first delta, and
/// hands them out as disjoint `&mut` borrows via
/// [`ShardWorkspaces::iter_mut`] for scoped-thread fan-out.
#[derive(Debug, Clone, Default)]
pub struct ShardWorkspaces {
    workspaces: Vec<BennettWorkspace>,
}

impl ShardWorkspaces {
    /// One workspace per entry of `orders`, each pre-sized for that shard's
    /// matrix order.
    pub fn for_orders(orders: &[usize]) -> Self {
        ShardWorkspaces {
            workspaces: orders
                .iter()
                .map(|&n| BennettWorkspace::with_order(n))
                .collect(),
        }
    }

    /// Number of shards covered.
    pub fn len(&self) -> usize {
        self.workspaces.len()
    }

    /// Returns `true` when no shard workspaces exist.
    pub fn is_empty(&self) -> bool {
        self.workspaces.is_empty()
    }

    /// The workspace of one shard.
    pub fn get_mut(&mut self, shard: usize) -> &mut BennettWorkspace {
        &mut self.workspaces[shard]
    }

    /// Disjoint mutable borrows of every shard's workspace, in shard order —
    /// zip against the per-shard factors to fan sweeps out across threads.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut BennettWorkspace> {
        self.workspaces.iter_mut()
    }
}

/// Storage back-ends Bennett's sweep can run against.
///
/// Structural traversals hand out *borrowed* sorted slices into the storage's
/// own index arrays; implementations must not allocate to answer them.
pub trait LuStorage {
    /// Matrix order.
    fn order(&self) -> usize;
    /// Reads `L(i, j)` for `i > j` (0 when structurally absent).
    fn read_l(&self, i: usize, j: usize) -> f64;
    /// Reads `U(i, j)` for `j ≥ i` (0 when structurally absent).
    fn read_u(&self, i: usize, j: usize) -> f64;
    /// Writes `L(i, j)` for `i > j`.
    fn write_l(&mut self, i: usize, j: usize, value: f64) -> LuResult<()>;
    /// Writes `U(i, j)` for `j ≥ i`.
    fn write_u(&mut self, i: usize, j: usize, value: f64) -> LuResult<()>;
    /// Structural rows `i > j` of column `j` of `L`, ascending.
    fn l_col_rows(&self, j: usize) -> &[usize];
    /// Structural columns `j > i` of row `i` of `U`, ascending.
    fn u_row_cols(&self, i: usize) -> &[usize];
}

impl LuStorage for LuFactors {
    fn order(&self) -> usize {
        self.n()
    }

    fn read_l(&self, i: usize, j: usize) -> f64 {
        self.l(i, j)
    }

    fn read_u(&self, i: usize, j: usize) -> f64 {
        self.u(i, j)
    }

    fn write_l(&mut self, i: usize, j: usize, value: f64) -> LuResult<()> {
        match self.structure().slot(i, j) {
            Some(slot) => {
                *self.value_mut(slot) = value;
                Ok(())
            }
            None if value.abs() <= FILL_DROP_TOL => Ok(()),
            None => Err(LuError::FillOutsideStructure {
                row: i,
                col: j,
                magnitude: value.abs(),
            }),
        }
    }

    fn write_u(&mut self, i: usize, j: usize, value: f64) -> LuResult<()> {
        self.write_l(i, j, value)
    }

    fn l_col_rows(&self, j: usize) -> &[usize] {
        self.structure().lower_col(j).0
    }

    fn u_row_cols(&self, i: usize) -> &[usize] {
        self.structure().upper_row_cols(i)
    }
}

impl LuStorage for DynamicLuFactors {
    fn order(&self) -> usize {
        self.n()
    }

    fn read_l(&self, i: usize, j: usize) -> f64 {
        if i == j {
            1.0
        } else {
            self.peek(i, j)
        }
    }

    fn read_u(&self, i: usize, j: usize) -> f64 {
        self.peek(i, j)
    }

    fn write_l(&mut self, i: usize, j: usize, value: f64) -> LuResult<()> {
        self.write(i, j, value);
        Ok(())
    }

    fn write_u(&mut self, i: usize, j: usize, value: f64) -> LuResult<()> {
        self.write(i, j, value);
        Ok(())
    }

    fn l_col_rows(&self, j: usize) -> &[usize] {
        self.lower_col_rows(j)
    }

    fn u_row_cols(&self, i: usize) -> &[usize] {
        self.upper_row_cols(i)
    }
}

/// Reusable scratch for Bennett sweeps.
///
/// One workspace serves any number of sequential [`rank_one_update_with`] /
/// [`apply_delta_with`] calls against matrices of any order: the dense
/// `x`/`y` vectors grow monotonically to the largest order seen and are
/// invalidated between updates by bumping an epoch stamp instead of zeroing,
/// the sparse support lists and pivot queue are plain sorted vectors whose
/// capacity is retained across calls, and the merge buffers absorb what used
/// to be a fresh `Vec` per pivot.  In the steady state a sweep performs no
/// heap allocation at all.
#[derive(Debug, Clone, Default)]
pub struct BennettWorkspace {
    /// Current update's epoch; `x`/`y` entries are valid only when their
    /// stamp matches.  Starts at 0 (matching no stamp) and is bumped by
    /// [`BennettWorkspace::seed`].
    epoch: u64,
    x: Vec<f64>,
    y: Vec<f64>,
    x_stamp: Vec<u64>,
    y_stamp: Vec<u64>,
    /// Sorted indices with `x[i] != 0` (the live support; cancelled entries
    /// are evicted so later merges stay tight).
    x_support: Vec<usize>,
    /// Sorted indices with `y[j] != 0`.
    y_support: Vec<usize>,
    /// Sorted pivot queue; `pending[..pending_pos]` is already processed.
    pending: Vec<usize>,
    pending_pos: usize,
    /// Merge scratch for "column k of L ∪ x-support below k".
    rows_buf: Vec<usize>,
    /// Merge scratch for "row k of U ∪ y-support right of k".
    cols_buf: Vec<usize>,
    /// `(col, row, change)` scratch for grouping a ΔA by column.
    delta_buf: Vec<(usize, usize, f64)>,
    /// Per-column `x` entry list scratch for [`apply_delta_with`].
    x_buf: Vec<(usize, f64)>,
}

impl BennettWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        BennettWorkspace::default()
    }

    /// Creates a workspace with dense scratch pre-sized for order `n`.
    pub fn with_order(n: usize) -> Self {
        let mut ws = BennettWorkspace::new();
        ws.grow(n);
        ws
    }

    /// The order the dense scratch currently covers.
    pub fn capacity(&self) -> usize {
        self.x.len()
    }

    fn grow(&mut self, n: usize) {
        if self.x.len() < n {
            self.x.resize(n, 0.0);
            self.y.resize(n, 0.0);
            self.x_stamp.resize(n, 0);
            self.y_stamp.resize(n, 0);
        }
    }

    /// Readies the workspace for one rank-one update of order `n` and scatters
    /// the sparse `x`/`y` entry lists into the dense scratch.
    fn seed(&mut self, n: usize, x_entries: &[(usize, f64)], y_entries: &[(usize, f64)]) {
        self.grow(n);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u64 wrap-around: stale stamps could collide, so clear them once.
            self.x_stamp.fill(0);
            self.y_stamp.fill(0);
            self.epoch = 1;
        }
        self.x_support.clear();
        self.y_support.clear();
        // Hard bounds checks: the dense scratch may be larger than this
        // update's order (workspaces are shared across matrices), so an
        // out-of-range index would otherwise be absorbed silently and
        // surface later as a misleading singular-pivot error.
        for &(i, v) in x_entries {
            assert!(i < n, "x index {i} out of range for order {n}");
            self.x_accum(i, v);
        }
        for &(j, v) in y_entries {
            assert!(j < n, "y index {j} out of range for order {n}");
            self.y_accum(j, v);
        }
        // The pivots that may do work are exactly the union of both supports.
        self.pending.clear();
        self.pending_pos = 0;
        merge_union_into(&mut self.pending, &self.x_support, &self.y_support);
    }

    #[inline]
    fn x_get(&self, i: usize) -> f64 {
        if self.x_stamp[i] == self.epoch {
            self.x[i]
        } else {
            0.0
        }
    }

    #[inline]
    fn y_get(&self, j: usize) -> f64 {
        if self.y_stamp[j] == self.epoch {
            self.y[j]
        } else {
            0.0
        }
    }

    /// Adds `v` to `x[i]` during seeding, maintaining the support list (an
    /// entry cancelled back to exactly zero is evicted).
    fn x_accum(&mut self, i: usize, v: f64) {
        let old = self.x_get(i);
        let new = old + v;
        self.x[i] = new;
        self.x_stamp[i] = self.epoch;
        Self::support_transition(&mut self.x_support, i, old, new);
    }

    fn y_accum(&mut self, j: usize, v: f64) {
        let old = self.y_get(j);
        let new = old + v;
        self.y[j] = new;
        self.y_stamp[j] = self.epoch;
        Self::support_transition(&mut self.y_support, j, old, new);
    }

    /// Applies `x[i] -= d` during the sweep: indices entering the support are
    /// also queued as pending pivots, indices cancelled to exactly zero are
    /// evicted so later structural merges and `entries_touched` counts do not
    /// keep paying for them.
    fn x_sub(&mut self, i: usize, d: f64) {
        let old = self.x_get(i);
        let new = old - d;
        self.x[i] = new;
        self.x_stamp[i] = self.epoch;
        if Self::support_transition(&mut self.x_support, i, old, new) {
            self.pending_push(i);
        }
    }

    fn y_sub(&mut self, j: usize, d: f64) {
        let old = self.y_get(j);
        let new = old - d;
        self.y[j] = new;
        self.y_stamp[j] = self.epoch;
        if Self::support_transition(&mut self.y_support, j, old, new) {
            self.pending_push(j);
        }
    }

    /// Updates a sorted support list for a value transition `old → new`;
    /// returns `true` when the index newly *entered* the support.
    fn support_transition(support: &mut Vec<usize>, idx: usize, old: f64, new: f64) -> bool {
        if new != 0.0 && old == 0.0 {
            if let Err(pos) = support.binary_search(&idx) {
                support.insert(pos, idx);
            }
            true
        } else if new == 0.0 && old != 0.0 {
            if let Ok(pos) = support.binary_search(&idx) {
                support.remove(pos);
            }
            false
        } else {
            false
        }
    }

    /// The live `x` support strictly greater than `k`.
    #[inline]
    fn x_support_after(&self, k: usize) -> &[usize] {
        let s = &self.x_support;
        &s[s.partition_point(|&i| i <= k)..]
    }

    /// The live `y` support strictly greater than `k`.
    #[inline]
    fn y_support_after(&self, k: usize) -> &[usize] {
        let s = &self.y_support;
        &s[s.partition_point(|&j| j <= k)..]
    }

    /// Pops the smallest unprocessed pending pivot.
    #[inline]
    fn pending_pop(&mut self) -> Option<usize> {
        let k = *self.pending.get(self.pending_pos)?;
        self.pending_pos += 1;
        Some(k)
    }

    /// Queues pivot `i`.  All sweep insertions satisfy `i >` the last popped
    /// pivot, so searching the unprocessed tail suffices and the processed
    /// prefix is never disturbed.
    fn pending_push(&mut self, i: usize) {
        debug_assert!(self.pending_pos == 0 || i > self.pending[self.pending_pos - 1]);
        if let Err(pos) = self.pending[self.pending_pos..].binary_search(&i) {
            self.pending.insert(self.pending_pos + pos, i);
        }
    }
}

/// Merges two sorted, deduplicated slices into `out` (cleared first), keeping
/// order and dropping duplicates.
fn merge_union_into(out: &mut Vec<usize>, a: &[usize], b: &[usize]) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        let (av, bv) = (a[ia], b[ib]);
        if av < bv {
            out.push(av);
            ia += 1;
        } else if bv < av {
            out.push(bv);
            ib += 1;
        } else {
            out.push(av);
            ia += 1;
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
}

/// Applies the rank-one update `A ← A + g·x·yᵀ` to factors held in `storage`,
/// using `ws` for every piece of mutable scratch.
///
/// `x` and `y` are given as sparse entry lists; indices refer to the
/// (reordered) numbering of the factors.  Reusing one workspace across a
/// stream of updates makes the steady-state sweep allocation-free.
pub fn rank_one_update_with<S: LuStorage>(
    storage: &mut S,
    ws: &mut BennettWorkspace,
    x_entries: &[(usize, f64)],
    y_entries: &[(usize, f64)],
    g: f64,
) -> LuResult<BennettStats> {
    let n = storage.order();
    let mut stats = BennettStats {
        rank_one_updates: 1,
        ..BennettStats::default()
    };
    if g == 0.0 || x_entries.is_empty() || y_entries.is_empty() {
        return Ok(stats);
    }
    ws.seed(n, x_entries, y_entries);
    let mut g = g;

    while let Some(k) = ws.pending_pop() {
        stats.pivots_processed += 1;
        let xk = ws.x_get(k);
        let yk = ws.y_get(k);
        if xk == 0.0 && yk == 0.0 {
            continue;
        }
        let ukk_old = storage.read_u(k, k);
        if !ukk_old.is_finite() || ukk_old.abs() < SINGULAR_TOL {
            return Err(LuError::SingularPivot {
                index: k,
                value: ukk_old,
            });
        }
        let ukk_new = ukk_old + g * xk * yk;
        if !ukk_new.is_finite() || ukk_new.abs() < SINGULAR_TOL {
            return Err(LuError::SingularPivot {
                index: k,
                value: ukk_new,
            });
        }
        storage.write_u(k, k, ukk_new)?;
        stats.entries_touched += 1;

        // Column k of L and the x vector: union of the structural column and
        // the current x support below the pivot.  The merged index list is
        // materialised into the reused buffer so the storage borrow ends
        // before the read/write loop.
        let mut rows = mem::take(&mut ws.rows_buf);
        merge_union_into(&mut rows, storage.l_col_rows(k), ws.x_support_after(k));
        for &i in &rows {
            let l_old = storage.read_l(i, k);
            let l_new = (l_old * ukk_old + g * yk * ws.x_get(i)) / ukk_new;
            if l_new != l_old {
                if let Err(err) = storage.write_l(i, k, l_new) {
                    ws.rows_buf = rows;
                    return Err(err);
                }
            }
            stats.entries_touched += 1;
            if xk != 0.0 && l_old != 0.0 {
                ws.x_sub(i, xk * l_old);
            }
        }
        ws.rows_buf = rows;

        // Row k of U and the y vector: union of the structural row and the
        // current y support right of the pivot.
        let mut cols = mem::take(&mut ws.cols_buf);
        merge_union_into(&mut cols, storage.u_row_cols(k), ws.y_support_after(k));
        for &j in &cols {
            let u_old = storage.read_u(k, j);
            let u_new = u_old + g * xk * ws.y_get(j);
            if u_new != u_old {
                if let Err(err) = storage.write_u(k, j, u_new) {
                    ws.cols_buf = cols;
                    return Err(err);
                }
            }
            stats.entries_touched += 1;
            if yk != 0.0 && u_old != 0.0 {
                ws.y_sub(j, yk * u_old / ukk_old);
            }
        }
        ws.cols_buf = cols;

        g *= ukk_old / ukk_new;
    }
    Ok(stats)
}

/// Applies the rank-one update `A ← A + g·x·yᵀ` with a throwaway workspace.
///
/// Convenience wrapper over [`rank_one_update_with`] for one-off updates;
/// streaming callers should hold a [`BennettWorkspace`] and use the `_with`
/// form so the sweep stays allocation-free.
pub fn rank_one_update<S: LuStorage>(
    storage: &mut S,
    x_entries: &[(usize, f64)],
    y_entries: &[(usize, f64)],
    g: f64,
) -> LuResult<BennettStats> {
    let mut ws = BennettWorkspace::new();
    rank_one_update_with(storage, &mut ws, x_entries, y_entries, g)
}

/// Applies a sparse matrix update `ΔA` (given as `(row, col, old, new)`
/// tuples, as produced by [`clude_sparse::CsrMatrix::delta_to`]) to factors
/// held in `storage` by a sequence of column rank-one updates, all sharing
/// the caller's workspace.
pub fn apply_delta_with<S: LuStorage>(
    storage: &mut S,
    ws: &mut BennettWorkspace,
    delta: &[(usize, usize, f64, f64)],
) -> LuResult<BennettStats> {
    let mut stats = BennettStats::default();
    if delta.is_empty() {
        return Ok(stats);
    }
    // Group the changed entries by column in the reused scratch.
    let mut groups = mem::take(&mut ws.delta_buf);
    groups.clear();
    for &(i, j, old, new) in delta {
        let change = new - old;
        if change != 0.0 {
            groups.push((j, i, change));
        }
    }
    // Stable sort: entries repeating a coordinate (legal, if unusual, input)
    // keep their relative order, so accumulation order — and hence the exact
    // floating-point result — matches applying the list as given.
    groups.sort_by_key(|&(col, row, _)| (col, row));
    let mut x_buf = mem::take(&mut ws.x_buf);
    let mut result = Ok(());
    let mut start = 0;
    while start < groups.len() {
        let col = groups[start].0;
        x_buf.clear();
        let mut end = start;
        while end < groups.len() && groups[end].0 == col {
            x_buf.push((groups[end].1, groups[end].2));
            end += 1;
        }
        match rank_one_update_with(storage, ws, &x_buf, &[(col, 1.0)], 1.0) {
            Ok(s) => stats.merge(&s),
            Err(err) => {
                result = Err(err);
                break;
            }
        }
        start = end;
    }
    ws.delta_buf = groups;
    ws.x_buf = x_buf;
    result.map(|()| stats)
}

/// Applies a sparse matrix update `ΔA` with a throwaway workspace.
///
/// Convenience wrapper over [`apply_delta_with`]; streaming callers should
/// reuse a [`BennettWorkspace`] instead.
pub fn apply_delta<S: LuStorage>(
    storage: &mut S,
    delta: &[(usize, usize, f64, f64)],
) -> LuResult<BennettStats> {
    let mut ws = BennettWorkspace::new();
    apply_delta_with(storage, &mut ws, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::factorize_fresh;
    use crate::structure::LuStructure;
    use clude_sparse::{CooMatrix, CsrMatrix};
    use std::sync::Arc;

    fn diag_dominant(n: usize, extra: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 8.0 + i as f64).unwrap();
        }
        for &(i, j, v) in extra {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    fn base_matrix() -> CsrMatrix {
        diag_dominant(
            5,
            &[
                (0, 2, 1.0),
                (1, 0, -1.5),
                (2, 1, 2.0),
                (3, 2, -0.5),
                (4, 0, 1.0),
                (2, 4, 0.5),
            ],
        )
    }

    /// Builds the updated matrix from a delta list.
    fn apply_delta_to_matrix(a: &CsrMatrix, delta: &[(usize, usize, f64, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(a.n_rows(), a.n_cols());
        for (i, j, v) in a.iter() {
            coo.push(i, j, v).unwrap();
        }
        for &(i, j, old, new) in delta {
            coo.push(i, j, new - old).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn rank_one_update_on_static_matches_refactorization() {
        let a = base_matrix();
        // The static structure must cover the fill of both the old and the
        // new matrix; build it from the union pattern (what CLUDE does).
        let delta: Vec<(usize, usize, f64, f64)> = vec![(3, 0, 0.0, 0.7)];
        let a_new = apply_delta_to_matrix(&a, &delta);
        let union_pattern = a.pattern().union(&a_new.pattern()).unwrap();
        let structure = LuStructure::from_pattern(&union_pattern)
            .unwrap()
            .into_shared();
        let mut factors = LuFactors::factorize(Arc::clone(&structure), &a).unwrap();
        let x = [(3usize, 0.7f64)];
        let y = [(0usize, 1.0f64)];
        let stats = rank_one_update(&mut factors, &x, &y, 1.0).unwrap();
        assert!(stats.pivots_processed >= 1);
        let fresh = LuFactors::factorize(structure, &a_new).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!(
                    (factors.l(i, j) - fresh.l(i, j)).abs() < 1e-10,
                    "L({i},{j}) {} vs {}",
                    factors.l(i, j),
                    fresh.l(i, j)
                );
                assert!(
                    (factors.u(i, j) - fresh.u(i, j)).abs() < 1e-10,
                    "U({i},{j}) {} vs {}",
                    factors.u(i, j),
                    fresh.u(i, j)
                );
            }
        }
    }

    #[test]
    fn apply_delta_on_dynamic_matches_refactorization() {
        let a = base_matrix();
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        let delta = vec![
            (0usize, 2usize, 1.0f64, 0.0f64), // entry removed
            (1, 0, -1.5, -2.0),               // entry changed
            (4, 3, 0.0, 0.9),                 // entry added (new fill path)
            (2, 4, 0.5, 0.8),
        ];
        let a_new = apply_delta_to_matrix(&a, &delta);
        let stats = apply_delta(&mut dynamic, &delta).unwrap();
        assert!(stats.rank_one_updates >= 3);
        assert!(dynamic.reconstruct().max_abs_diff(&a_new).unwrap() < 1e-10);
        // Solves agree with a fresh factorization.
        let fresh = factorize_fresh(&a_new).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0, 0.25];
        let x1 = dynamic.solve(&b).unwrap();
        let x2 = fresh.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn reused_workspace_matches_throwaway_workspace() {
        let a = base_matrix();
        let mut with_reuse = DynamicLuFactors::factorize(&a).unwrap();
        let mut with_fresh = with_reuse.clone();
        let mut ws = BennettWorkspace::new();
        let steps: Vec<Vec<(usize, usize, f64, f64)>> = vec![
            vec![(0, 4, 0.0, 0.4), (1, 0, -1.5, -1.0)],
            vec![(4, 0, 1.0, 0.0), (3, 1, 0.0, 0.6)],
            vec![(2, 1, 2.0, 2.5), (0, 2, 1.0, 1.2), (4, 2, 0.0, -0.3)],
        ];
        for delta in &steps {
            let s1 = apply_delta_with(&mut with_reuse, &mut ws, delta).unwrap();
            let s2 = apply_delta(&mut with_fresh, delta).unwrap();
            assert_eq!(s1, s2);
            for i in 0..5 {
                for j in 0..5 {
                    assert_eq!(
                        with_reuse.l(i, j).to_bits(),
                        with_fresh.l(i, j).to_bits(),
                        "L({i},{j}) diverged"
                    );
                    assert_eq!(
                        with_reuse.u(i, j).to_bits(),
                        with_fresh.u(i, j).to_bits(),
                        "U({i},{j}) diverged"
                    );
                }
            }
        }
        // The dense scratch grew once to the matrix order and stayed there.
        assert_eq!(ws.capacity(), 5);
    }

    #[test]
    fn workspace_serves_mixed_orders() {
        // A workspace used for a large matrix keeps serving smaller ones (and
        // vice versa) — stale dense entries must never leak across epochs.
        let mut ws = BennettWorkspace::new();
        let small = diag_dominant(3, &[(1, 0, 0.5)]);
        let large = diag_dominant(8, &[(5, 1, 1.0), (2, 6, -0.5)]);
        let mut f_large = DynamicLuFactors::factorize(&large).unwrap();
        let delta_large = vec![(5usize, 1usize, 1.0f64, 2.0f64), (7, 0, 0.0, 0.3)];
        apply_delta_with(&mut f_large, &mut ws, &delta_large).unwrap();
        let mut f_small = DynamicLuFactors::factorize(&small).unwrap();
        let delta_small = vec![(1usize, 0usize, 0.5f64, -0.5f64), (2, 1, 0.0, 0.25)];
        apply_delta_with(&mut f_small, &mut ws, &delta_small).unwrap();
        let small_new = apply_delta_to_matrix(&small, &delta_small);
        let large_new = apply_delta_to_matrix(&large, &delta_large);
        assert!(f_small.reconstruct().max_abs_diff(&small_new).unwrap() < 1e-10);
        assert!(f_large.reconstruct().max_abs_diff(&large_new).unwrap() < 1e-10);
    }

    #[test]
    fn cancellation_evicts_support_entries() {
        // Construct an update whose x entries cancel exactly during seeding:
        // the support (and so the pivot queue) must not retain the index.
        let a = base_matrix();
        let mut factors = DynamicLuFactors::factorize(&a).unwrap();
        let before: Vec<f64> = (0..5).map(|i| factors.u(i, i)).collect();
        let stats = rank_one_update(
            &mut factors,
            &[(3, 0.7), (3, -0.7)], // cancels to zero
            &[(0, 1.0)],
            1.0,
        )
        .unwrap();
        // Pivot 0 still runs (y side), but no x work propagates.
        assert!(stats.pivots_processed >= 1);
        let after: Vec<f64> = (0..5).map(|i| factors.u(i, i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn dynamic_update_inserts_fill_nodes() {
        let a = diag_dominant(4, &[(1, 0, 1.0)]);
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        dynamic.reset_structural_stats();
        // Adding entry (2,1) creates fill at (2,0)? No: updating column 1 with
        // x = e2 touches L(2,1), a brand new position -> structural insert.
        let delta = vec![(2usize, 1usize, 0.0f64, 3.0f64)];
        apply_delta(&mut dynamic, &delta).unwrap();
        assert!(dynamic.structural_stats().inserts >= 1);
        let a_new = apply_delta_to_matrix(&a, &delta);
        assert!(dynamic.reconstruct().max_abs_diff(&a_new).unwrap() < 1e-10);
    }

    #[test]
    fn static_update_outside_structure_is_rejected() {
        let a = diag_dominant(4, &[(1, 0, 1.0)]);
        // Structure tailored to A only: an update creating a genuinely new
        // entry must be reported.
        let structure = LuStructure::from_pattern(&a.pattern())
            .unwrap()
            .into_shared();
        let mut factors = LuFactors::factorize(structure, &a).unwrap();
        let err = rank_one_update(&mut factors, &[(2, 5.0)], &[(1, 1.0)], 1.0).unwrap_err();
        assert!(matches!(err, LuError::FillOutsideStructure { .. }));
    }

    #[test]
    fn workspace_survives_failed_updates() {
        // A rejected update must leave the workspace reusable for the next.
        let a = diag_dominant(4, &[(1, 0, 1.0)]);
        let structure = LuStructure::from_pattern(&a.pattern())
            .unwrap()
            .into_shared();
        let mut factors = LuFactors::factorize(Arc::clone(&structure), &a).unwrap();
        let mut ws = BennettWorkspace::new();
        let err = rank_one_update_with(&mut factors, &mut ws, &[(2, 5.0)], &[(1, 1.0)], 1.0);
        assert!(err.is_err());
        // An in-structure update through the same workspace still works.
        let mut ok_factors = LuFactors::factorize(structure, &a).unwrap();
        let stats =
            rank_one_update_with(&mut ok_factors, &mut ws, &[(1, 0.5)], &[(0, 1.0)], 1.0).unwrap();
        assert!(stats.pivots_processed >= 1);
        let a_new = apply_delta_to_matrix(&a, &[(1, 0, 1.0, 1.5)]);
        let fresh = factorize_fresh(&a_new).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((ok_factors.l(i, j) - fresh.l(i, j)).abs() < 1e-10);
                assert!((ok_factors.u(i, j) - fresh.u(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zero_and_empty_updates_are_noops() {
        let a = base_matrix();
        let mut factors = factorize_fresh(&a).unwrap();
        let before: Vec<f64> = (0..5).map(|i| factors.u(i, i)).collect();
        rank_one_update(&mut factors, &[], &[(0, 1.0)], 1.0).unwrap();
        rank_one_update(&mut factors, &[(0, 1.0)], &[], 1.0).unwrap();
        rank_one_update(&mut factors, &[(0, 1.0)], &[(0, 1.0)], 0.0).unwrap();
        let stats = apply_delta(&mut factors, &[]).unwrap();
        assert_eq!(stats, BennettStats::default());
        let after: Vec<f64> = (0..5).map(|i| factors.u(i, i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn sequence_of_updates_tracks_matrix_sequence() {
        // Simulate a small evolving matrix sequence and keep the dynamic
        // factors in sync via Bennett, checking against refactorization at
        // every step.
        let mut current = base_matrix();
        let mut dynamic = DynamicLuFactors::factorize(&current).unwrap();
        let mut ws = BennettWorkspace::new();
        let steps: Vec<Vec<(usize, usize, f64, f64)>> = vec![
            vec![(0, 4, 0.0, 0.4), (1, 0, -1.5, -1.0)],
            vec![(4, 0, 1.0, 0.0), (3, 1, 0.0, 0.6)],
            vec![(2, 1, 2.0, 2.5), (0, 2, 1.0, 1.2), (4, 2, 0.0, -0.3)],
        ];
        for delta in steps {
            let next = apply_delta_to_matrix(&current, &delta);
            apply_delta_with(&mut dynamic, &mut ws, &delta).unwrap();
            assert!(dynamic.reconstruct().max_abs_diff(&next).unwrap() < 1e-9);
            current = next;
        }
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = BennettStats {
            rank_one_updates: 1,
            pivots_processed: 2,
            entries_touched: 3,
        };
        let b = BennettStats {
            rank_one_updates: 4,
            pivots_processed: 5,
            entries_touched: 6,
        };
        a.merge(&b);
        assert_eq!(a.rank_one_updates, 5);
        assert_eq!(a.pivots_processed, 7);
        assert_eq!(a.entries_touched, 9);
    }

    #[test]
    fn singular_update_is_detected() {
        // Make the (0,0) pivot collapse to zero.
        let a = diag_dominant(3, &[]);
        let mut factors = factorize_fresh(&a).unwrap();
        let err = rank_one_update(&mut factors, &[(0, -8.0)], &[(0, 1.0)], 1.0).unwrap_err();
        assert!(matches!(err, LuError::SingularPivot { index: 0, .. }));
    }

    #[test]
    fn shard_workspaces_are_independent_and_presized() {
        let mut pool = ShardWorkspaces::for_orders(&[3, 7, 5]);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert_eq!(pool.get_mut(1).capacity(), 7);
        let capacities: Vec<usize> = pool.iter_mut().map(|ws| ws.capacity()).collect();
        assert_eq!(capacities, vec![3, 7, 5]);
        // Sweeps through one shard's workspace leave the others untouched and
        // produce the same factors as a throwaway workspace.
        let a = diag_dominant(5, &[(0, 2, 1.0), (3, 1, -2.0)]);
        let mut with_pool = DynamicLuFactors::factorize(&a).unwrap();
        let mut with_throwaway = with_pool.clone();
        let delta = [(0usize, 2usize, 1.0f64, 2.5f64), (3, 1, -2.0, 0.5)];
        apply_delta_with(&mut with_pool, pool.get_mut(2), &delta).unwrap();
        apply_delta(&mut with_throwaway, &delta).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(with_pool.l(i, j), with_throwaway.l(i, j));
                assert_eq!(with_pool.u(i, j), with_throwaway.u(i, j));
            }
        }
    }

    #[test]
    fn merge_union_handles_overlap_and_tails() {
        let mut out = Vec::new();
        merge_union_into(&mut out, &[1, 3, 5], &[2, 3, 7, 9]);
        assert_eq!(out, vec![1, 2, 3, 5, 7, 9]);
        merge_union_into(&mut out, &[], &[4]);
        assert_eq!(out, vec![4]);
        merge_union_into(&mut out, &[0], &[]);
        assert_eq!(out, vec![0]);
    }
}
