//! Bennett's algorithm for updating triangular factors (Bennett, 1965).
//!
//! Given the factors `A = L·U` (unit lower `L`) and a rank-one modification
//! `A' = A + g·x·yᵀ`, Bennett's algorithm rewrites `L` and `U` in place into
//! the factors of `A'` by a single sweep over the pivots.  For pivot `k` with
//! old pivot value `u_kk` and new value `u'_kk = u_kk + g·x_k·y_k`:
//!
//! ```text
//! L'(i,k) = (L(i,k)·u_kk + g·y_k·x_i) / u'_kk          for i > k
//! x_i    ← x_i − x_k·L(i,k)                            (old L)
//! U'(k,j) = U(k,j) + g·x_k·y_j                         for j > k
//! y_j    ← y_j − y_k·U(k,j)/u_kk                       (old U)
//! g      ← g·u_kk / u'_kk
//! ```
//!
//! Only pivots where `x_k` or `y_k` is non-zero do any work, so a sparse
//! change to a sparse matrix touches a small part of the factors.  The sweep
//! is storage-agnostic: it runs over either the static structure (CLUDE) or
//! the dynamic adjacency lists (INC/CINC), which differ precisely in how they
//! absorb fill-ins that are not yet represented.
//!
//! A sparse update `ΔA` of arbitrary shape is applied as a sequence of
//! rank-one updates, one per column of `ΔA` (`x` = changed column values,
//! `y = e_j`, `g = 1`), as [`apply_delta`] does.

use crate::dynamic::DynamicLuFactors;
use crate::error::{LuError, LuResult};
use crate::factors::{LuFactors, SINGULAR_TOL};
use std::collections::BTreeSet;

/// Magnitude below which a would-be fill-in outside a static structure is
/// treated as numerical noise and dropped rather than reported as an error.
pub const FILL_DROP_TOL: f64 = 1e-9;

/// Work counters for Bennett updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BennettStats {
    /// Number of rank-one updates performed.
    pub rank_one_updates: usize,
    /// Number of pivots visited across all updates.
    pub pivots_processed: usize,
    /// Number of `L`/`U` entries read or written.
    pub entries_touched: usize,
}

impl BennettStats {
    /// Accumulates another stats record into `self`.
    pub fn merge(&mut self, other: &BennettStats) {
        self.rank_one_updates += other.rank_one_updates;
        self.pivots_processed += other.pivots_processed;
        self.entries_touched += other.entries_touched;
    }
}

/// Storage back-ends Bennett's sweep can run against.
pub trait LuStorage {
    /// Matrix order.
    fn order(&self) -> usize;
    /// Reads `L(i, j)` for `i > j` (0 when structurally absent).
    fn read_l(&self, i: usize, j: usize) -> f64;
    /// Reads `U(i, j)` for `j ≥ i` (0 when structurally absent).
    fn read_u(&self, i: usize, j: usize) -> f64;
    /// Writes `L(i, j)` for `i > j`.
    fn write_l(&mut self, i: usize, j: usize, value: f64) -> LuResult<()>;
    /// Writes `U(i, j)` for `j ≥ i`.
    fn write_u(&mut self, i: usize, j: usize, value: f64) -> LuResult<()>;
    /// Structural rows `i > j` of column `j` of `L`.
    fn l_col_rows(&self, j: usize) -> Vec<usize>;
    /// Structural columns `j > i` of row `i` of `U`.
    fn u_row_cols(&self, i: usize) -> Vec<usize>;
}

impl LuStorage for LuFactors {
    fn order(&self) -> usize {
        self.n()
    }

    fn read_l(&self, i: usize, j: usize) -> f64 {
        self.l(i, j)
    }

    fn read_u(&self, i: usize, j: usize) -> f64 {
        self.u(i, j)
    }

    fn write_l(&mut self, i: usize, j: usize, value: f64) -> LuResult<()> {
        match self.structure().slot(i, j) {
            Some(slot) => {
                *self.value_mut(slot) = value;
                Ok(())
            }
            None if value.abs() <= FILL_DROP_TOL => Ok(()),
            None => Err(LuError::FillOutsideStructure {
                row: i,
                col: j,
                magnitude: value.abs(),
            }),
        }
    }

    fn write_u(&mut self, i: usize, j: usize, value: f64) -> LuResult<()> {
        self.write_l(i, j, value)
    }

    fn l_col_rows(&self, j: usize) -> Vec<usize> {
        self.structure().lower_col(j).0.to_vec()
    }

    fn u_row_cols(&self, i: usize) -> Vec<usize> {
        self.structure()
            .upper_row_slots(i)
            .skip(1)
            .map(|slot| self.structure().col_of_slot(slot))
            .collect()
    }
}

impl LuStorage for DynamicLuFactors {
    fn order(&self) -> usize {
        self.n()
    }

    fn read_l(&self, i: usize, j: usize) -> f64 {
        if i == j {
            1.0
        } else {
            self.peek(i, j)
        }
    }

    fn read_u(&self, i: usize, j: usize) -> f64 {
        self.peek(i, j)
    }

    fn write_l(&mut self, i: usize, j: usize, value: f64) -> LuResult<()> {
        self.write(i, j, value);
        Ok(())
    }

    fn write_u(&mut self, i: usize, j: usize, value: f64) -> LuResult<()> {
        self.write(i, j, value);
        Ok(())
    }

    fn l_col_rows(&self, j: usize) -> Vec<usize> {
        self.lower_col_rows(j)
    }

    fn u_row_cols(&self, i: usize) -> Vec<usize> {
        self.upper_row_cols(i)
    }
}

/// Applies the rank-one update `A ← A + g·x·yᵀ` to factors held in `storage`.
///
/// `x` and `y` are given as sparse entry lists; indices refer to the
/// (reordered) numbering of the factors.
pub fn rank_one_update<S: LuStorage>(
    storage: &mut S,
    x_entries: &[(usize, f64)],
    y_entries: &[(usize, f64)],
    g: f64,
) -> LuResult<BennettStats> {
    let n = storage.order();
    let mut stats = BennettStats {
        rank_one_updates: 1,
        ..BennettStats::default()
    };
    if g == 0.0 || x_entries.is_empty() || y_entries.is_empty() {
        return Ok(stats);
    }
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    // Supports of x and y (indices that may hold non-zeros), kept sorted so
    // the per-pivot work stays proportional to the touched entries only.
    let mut x_support: BTreeSet<usize> = BTreeSet::new();
    let mut y_support: BTreeSet<usize> = BTreeSet::new();
    let mut pending: BTreeSet<usize> = BTreeSet::new();
    for &(i, v) in x_entries {
        debug_assert!(i < n, "x index out of range");
        x[i] += v;
        if x[i] != 0.0 {
            x_support.insert(i);
            pending.insert(i);
        }
    }
    for &(j, v) in y_entries {
        debug_assert!(j < n, "y index out of range");
        y[j] += v;
        if y[j] != 0.0 {
            y_support.insert(j);
            pending.insert(j);
        }
    }
    let mut g = g;

    while let Some(k) = pending.pop_first() {
        stats.pivots_processed += 1;
        let xk = x[k];
        let yk = y[k];
        if xk == 0.0 && yk == 0.0 {
            continue;
        }
        let ukk_old = storage.read_u(k, k);
        if !ukk_old.is_finite() || ukk_old.abs() < SINGULAR_TOL {
            return Err(LuError::SingularPivot {
                index: k,
                value: ukk_old,
            });
        }
        let ukk_new = ukk_old + g * xk * yk;
        if !ukk_new.is_finite() || ukk_new.abs() < SINGULAR_TOL {
            return Err(LuError::SingularPivot {
                index: k,
                value: ukk_new,
            });
        }
        storage.write_u(k, k, ukk_new)?;
        stats.entries_touched += 1;

        // Column k of L and the x vector: union of the structural column and
        // the current x support below the pivot.
        let rows = merge_sorted(&storage.l_col_rows(k), x_support.range(k + 1..).copied());
        for i in rows {
            let l_old = storage.read_l(i, k);
            let l_new = (l_old * ukk_old + g * yk * x[i]) / ukk_new;
            if l_new != l_old {
                storage.write_l(i, k, l_new)?;
            }
            stats.entries_touched += 1;
            if xk != 0.0 && l_old != 0.0 {
                x[i] -= xk * l_old;
                if x[i] != 0.0 {
                    x_support.insert(i);
                    pending.insert(i);
                }
            }
        }

        // Row k of U and the y vector: union of the structural row and the
        // current y support right of the pivot.
        let cols = merge_sorted(&storage.u_row_cols(k), y_support.range(k + 1..).copied());
        for j in cols {
            let u_old = storage.read_u(k, j);
            let u_new = u_old + g * xk * y[j];
            if u_new != u_old {
                storage.write_u(k, j, u_new)?;
            }
            stats.entries_touched += 1;
            if yk != 0.0 && u_old != 0.0 {
                y[j] -= yk * u_old / ukk_old;
                if y[j] != 0.0 {
                    y_support.insert(j);
                    pending.insert(j);
                }
            }
        }

        g *= ukk_old / ukk_new;
    }
    Ok(stats)
}

/// Merges a sorted slice with a sorted iterator into a sorted, deduplicated
/// vector.
fn merge_sorted(a: &[usize], b: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len());
    let mut b = b.peekable();
    let mut ia = 0;
    loop {
        match (a.get(ia), b.peek()) {
            (Some(&av), Some(&bv)) => {
                if av < bv {
                    out.push(av);
                    ia += 1;
                } else if bv < av {
                    out.push(bv);
                    b.next();
                } else {
                    out.push(av);
                    ia += 1;
                    b.next();
                }
            }
            (Some(&av), None) => {
                out.push(av);
                ia += 1;
            }
            (None, Some(&bv)) => {
                out.push(bv);
                b.next();
            }
            (None, None) => break,
        }
    }
    out
}

/// Applies a sparse matrix update `ΔA` (given as `(row, col, old, new)`
/// tuples, as produced by [`clude_sparse::CsrMatrix::delta_to`]) to factors
/// held in `storage` by a sequence of column rank-one updates.
pub fn apply_delta<S: LuStorage>(
    storage: &mut S,
    delta: &[(usize, usize, f64, f64)],
) -> LuResult<BennettStats> {
    let mut stats = BennettStats::default();
    if delta.is_empty() {
        return Ok(stats);
    }
    // Group the changed entries by column.
    let mut by_col: std::collections::BTreeMap<usize, Vec<(usize, f64)>> =
        std::collections::BTreeMap::new();
    for &(i, j, old, new) in delta {
        let change = new - old;
        if change != 0.0 {
            by_col.entry(j).or_default().push((i, change));
        }
    }
    for (col, x_entries) in by_col {
        let y_entries = [(col, 1.0)];
        let s = rank_one_update(storage, &x_entries, &y_entries, 1.0)?;
        stats.merge(&s);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::factorize_fresh;
    use crate::structure::LuStructure;
    use clude_sparse::{CooMatrix, CsrMatrix};
    use std::sync::Arc;

    fn diag_dominant(n: usize, extra: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 8.0 + i as f64).unwrap();
        }
        for &(i, j, v) in extra {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    fn base_matrix() -> CsrMatrix {
        diag_dominant(
            5,
            &[
                (0, 2, 1.0),
                (1, 0, -1.5),
                (2, 1, 2.0),
                (3, 2, -0.5),
                (4, 0, 1.0),
                (2, 4, 0.5),
            ],
        )
    }

    /// Builds the updated matrix from a delta list.
    fn apply_delta_to_matrix(a: &CsrMatrix, delta: &[(usize, usize, f64, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(a.n_rows(), a.n_cols());
        for (i, j, v) in a.iter() {
            coo.push(i, j, v).unwrap();
        }
        for &(i, j, old, new) in delta {
            coo.push(i, j, new - old).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn rank_one_update_on_static_matches_refactorization() {
        let a = base_matrix();
        // The static structure must cover the fill of both the old and the
        // new matrix; build it from the union pattern (what CLUDE does).
        let delta: Vec<(usize, usize, f64, f64)> = vec![(3, 0, 0.0, 0.7)];
        let a_new = apply_delta_to_matrix(&a, &delta);
        let union_pattern = a.pattern().union(&a_new.pattern()).unwrap();
        let structure = LuStructure::from_pattern(&union_pattern)
            .unwrap()
            .into_shared();
        let mut factors = LuFactors::factorize(Arc::clone(&structure), &a).unwrap();
        let x = [(3usize, 0.7f64)];
        let y = [(0usize, 1.0f64)];
        let stats = rank_one_update(&mut factors, &x, &y, 1.0).unwrap();
        assert!(stats.pivots_processed >= 1);
        let fresh = LuFactors::factorize(structure, &a_new).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!(
                    (factors.l(i, j) - fresh.l(i, j)).abs() < 1e-10,
                    "L({i},{j}) {} vs {}",
                    factors.l(i, j),
                    fresh.l(i, j)
                );
                assert!(
                    (factors.u(i, j) - fresh.u(i, j)).abs() < 1e-10,
                    "U({i},{j}) {} vs {}",
                    factors.u(i, j),
                    fresh.u(i, j)
                );
            }
        }
    }

    #[test]
    fn apply_delta_on_dynamic_matches_refactorization() {
        let a = base_matrix();
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        let delta = vec![
            (0usize, 2usize, 1.0f64, 0.0f64), // entry removed
            (1, 0, -1.5, -2.0),               // entry changed
            (4, 3, 0.0, 0.9),                 // entry added (new fill path)
            (2, 4, 0.5, 0.8),
        ];
        let a_new = apply_delta_to_matrix(&a, &delta);
        let stats = apply_delta(&mut dynamic, &delta).unwrap();
        assert!(stats.rank_one_updates >= 3);
        assert!(dynamic.reconstruct().max_abs_diff(&a_new).unwrap() < 1e-10);
        // Solves agree with a fresh factorization.
        let fresh = factorize_fresh(&a_new).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0, 0.25];
        let x1 = dynamic.solve(&b).unwrap();
        let x2 = fresh.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn dynamic_update_inserts_fill_nodes() {
        let a = diag_dominant(4, &[(1, 0, 1.0)]);
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        dynamic.reset_structural_stats();
        // Adding entry (2,1) creates fill at (2,0)? No: updating column 1 with
        // x = e2 touches L(2,1), a brand new position -> structural insert.
        let delta = vec![(2usize, 1usize, 0.0f64, 3.0f64)];
        apply_delta(&mut dynamic, &delta).unwrap();
        assert!(dynamic.structural_stats().inserts >= 1);
        let a_new = apply_delta_to_matrix(&a, &delta);
        assert!(dynamic.reconstruct().max_abs_diff(&a_new).unwrap() < 1e-10);
    }

    #[test]
    fn static_update_outside_structure_is_rejected() {
        let a = diag_dominant(4, &[(1, 0, 1.0)]);
        // Structure tailored to A only: an update creating a genuinely new
        // entry must be reported.
        let structure = LuStructure::from_pattern(&a.pattern())
            .unwrap()
            .into_shared();
        let mut factors = LuFactors::factorize(structure, &a).unwrap();
        let err = rank_one_update(&mut factors, &[(2, 5.0)], &[(1, 1.0)], 1.0).unwrap_err();
        assert!(matches!(err, LuError::FillOutsideStructure { .. }));
    }

    #[test]
    fn zero_and_empty_updates_are_noops() {
        let a = base_matrix();
        let mut factors = factorize_fresh(&a).unwrap();
        let before: Vec<f64> = (0..5).map(|i| factors.u(i, i)).collect();
        rank_one_update(&mut factors, &[], &[(0, 1.0)], 1.0).unwrap();
        rank_one_update(&mut factors, &[(0, 1.0)], &[], 1.0).unwrap();
        rank_one_update(&mut factors, &[(0, 1.0)], &[(0, 1.0)], 0.0).unwrap();
        let stats = apply_delta(&mut factors, &[]).unwrap();
        assert_eq!(stats, BennettStats::default());
        let after: Vec<f64> = (0..5).map(|i| factors.u(i, i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn sequence_of_updates_tracks_matrix_sequence() {
        // Simulate a small evolving matrix sequence and keep the dynamic
        // factors in sync via Bennett, checking against refactorization at
        // every step.
        let mut current = base_matrix();
        let mut dynamic = DynamicLuFactors::factorize(&current).unwrap();
        let steps: Vec<Vec<(usize, usize, f64, f64)>> = vec![
            vec![(0, 4, 0.0, 0.4), (1, 0, -1.5, -1.0)],
            vec![(4, 0, 1.0, 0.0), (3, 1, 0.0, 0.6)],
            vec![(2, 1, 2.0, 2.5), (0, 2, 1.0, 1.2), (4, 2, 0.0, -0.3)],
        ];
        for delta in steps {
            let next = apply_delta_to_matrix(&current, &delta);
            apply_delta(&mut dynamic, &delta).unwrap();
            assert!(dynamic.reconstruct().max_abs_diff(&next).unwrap() < 1e-9);
            current = next;
        }
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = BennettStats {
            rank_one_updates: 1,
            pivots_processed: 2,
            entries_touched: 3,
        };
        let b = BennettStats {
            rank_one_updates: 4,
            pivots_processed: 5,
            entries_touched: 6,
        };
        a.merge(&b);
        assert_eq!(a.rank_one_updates, 5);
        assert_eq!(a.pivots_processed, 7);
        assert_eq!(a.entries_touched, 9);
    }

    #[test]
    fn singular_update_is_detected() {
        // Make the (0,0) pivot collapse to zero.
        let a = diag_dominant(3, &[]);
        let mut factors = factorize_fresh(&a).unwrap();
        let err = rank_one_update(&mut factors, &[(0, -8.0)], &[(0, 1.0)], 1.0).unwrap_err();
        assert!(matches!(err, LuError::SingularPivot { index: 0, .. }));
    }
}
