//! Errors produced by the sparse LU engine.

use std::fmt;

/// Errors from symbolic/numeric factorization, solves and Bennett updates.
#[derive(Debug, Clone, PartialEq)]
pub enum LuError {
    /// A pivot became zero (or non-finite), so the factorization cannot
    /// proceed without pivoting.
    SingularPivot {
        /// Index (in the reordered numbering) of the offending pivot.
        index: usize,
        /// The offending pivot value.
        value: f64,
    },
    /// The input matrix has an entry at a position the static structure does
    /// not cover.  For CLUDE this indicates the matrix is not a member of the
    /// cluster whose universal pattern built the structure.
    EntryOutsideStructure {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// A Bennett update tried to create a non-zero at a position outside the
    /// static structure.
    FillOutsideStructure {
        /// Row of the would-be fill-in.
        row: usize,
        /// Column of the would-be fill-in.
        col: usize,
        /// Magnitude of the value that could not be stored.
        magnitude: f64,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        n_rows: usize,
        /// Number of columns.
        n_cols: usize,
    },
    /// Vector/matrix dimensions do not agree.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// An iterative solve (e.g. a sharded coupling combination) did not
    /// reach its tolerance within the iteration budget.
    ConvergenceFailure {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Last observed iterate change (∞-norm).
        last_diff: f64,
    },
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::SingularPivot { index, value } => {
                write!(f, "singular pivot at index {index} (value {value:e})")
            }
            LuError::EntryOutsideStructure { row, col } => {
                write!(f, "matrix entry ({row}, {col}) lies outside the LU structure")
            }
            LuError::FillOutsideStructure { row, col, magnitude } => write!(
                f,
                "update would create fill of magnitude {magnitude:e} at ({row}, {col}) outside the structure"
            ),
            LuError::NotSquare { n_rows, n_cols } => {
                write!(f, "LU decomposition requires a square matrix, got {n_rows}x{n_cols}")
            }
            LuError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            LuError::ConvergenceFailure {
                iterations,
                last_diff,
            } => write!(
                f,
                "iterative solve did not converge within {iterations} iterations (last change {last_diff:e})"
            ),
        }
    }
}

impl std::error::Error for LuError {}

/// Result alias for LU operations.
pub type LuResult<T> = Result<T, LuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        assert!(LuError::SingularPivot {
            index: 3,
            value: 0.0
        }
        .to_string()
        .contains("index 3"));
        assert!(LuError::EntryOutsideStructure { row: 1, col: 2 }
            .to_string()
            .contains("(1, 2)"));
        assert!(LuError::FillOutsideStructure {
            row: 1,
            col: 2,
            magnitude: 0.5
        }
        .to_string()
        .contains("outside"));
        assert!(LuError::NotSquare {
            n_rows: 2,
            n_cols: 3
        }
        .to_string()
        .contains("2x3"));
        assert!(LuError::DimensionMismatch {
            expected: 5,
            actual: 4
        }
        .to_string()
        .contains("expected 5"));
        assert!(LuError::ConvergenceFailure {
            iterations: 512,
            last_diff: 1e-3
        }
        .to_string()
        .contains("512 iterations"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LuError::NotSquare {
            n_rows: 1,
            n_cols: 2,
        });
    }
}
