//! Dynamically structured LU factors.
//!
//! [`DynamicLuFactors`] stores the combined factors `Â = L + U` in the
//! adjacency-list representation of the paper's Figure 4, where fill-ins that
//! appear during an incremental update are *inserted* into the lists on
//! demand.  This is the storage the straightforward incremental algorithms
//! (INC, CINC) use, and the structural maintenance it performs — node
//! insertions, list probes — is the cost the paper measures at roughly 70 %
//! of Bennett's running time.  The counters of the underlying
//! [`AdjacencyMatrix`] expose that cost to the benchmark harness.

use crate::error::{LuError, LuResult};
use crate::factors::{LuFactors, SINGULAR_TOL};
use crate::structure::LuStructure;
use clude_sparse::{AdjacencyMatrix, CooMatrix, CsrMatrix, StructuralStats};

/// LU factors held in mutable adjacency lists (row lists with values plus
/// per-column structural lists).
#[derive(Debug, Clone)]
pub struct DynamicLuFactors {
    n: usize,
    /// Strictly-lower slots hold `L`, diagonal and upper slots hold `U`.
    values: AdjacencyMatrix,
}

impl DynamicLuFactors {
    /// Performs a full decomposition of `a`, building the adjacency lists
    /// from the matrix's own symbolic sparsity pattern.
    pub fn factorize(a: &CsrMatrix) -> LuResult<Self> {
        let structure = LuStructure::from_pattern(&a.pattern())?.into_shared();
        let static_factors = LuFactors::factorize(structure, a)?;
        Ok(Self::from_static(&static_factors))
    }

    /// Converts a statically structured factorization into dynamic storage.
    pub fn from_static(factors: &LuFactors) -> Self {
        let n = factors.n();
        let mut values = AdjacencyMatrix::zeros(n, n);
        for i in 0..n {
            for slot in factors.structure().row_range(i) {
                let j = factors.structure().col_of_slot(slot);
                let v = factors.value(slot);
                if v != 0.0 || i == j {
                    values.set(i, j, v);
                }
            }
        }
        values.reset_stats();
        DynamicLuFactors { n, values }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored list nodes (`|sp(Â)|` of the current factors).
    pub fn nnz(&self) -> usize {
        self.values.nnz()
    }

    /// Structural-maintenance counters accumulated by updates so far.
    pub fn structural_stats(&self) -> StructuralStats {
        self.values.stats()
    }

    /// Resets the structural-maintenance counters.
    pub fn reset_structural_stats(&mut self) {
        self.values.reset_stats();
    }

    /// `L(i, j)` with the implicit unit diagonal.
    pub fn l(&self, i: usize, j: usize) -> f64 {
        if i == j {
            1.0
        } else if j > i {
            0.0
        } else {
            self.values.peek(i, j)
        }
    }

    /// `U(i, j)`.
    pub fn u(&self, i: usize, j: usize) -> f64 {
        if j < i {
            0.0
        } else {
            self.values.peek(i, j)
        }
    }

    pub(crate) fn peek(&self, i: usize, j: usize) -> f64 {
        self.values.peek(i, j)
    }

    /// Whether position `(i, j)` is structurally present in the factors —
    /// explicitly stored zeros count as present, values merely implied (the
    /// unit diagonal of `L`, anything outside the lists) do not.
    ///
    /// This is the membership test the engine's value-only/structural delta
    /// classification runs against: an update whose every entry lands on a
    /// present position can be refactored down the frozen pattern.
    pub fn has_entry(&self, i: usize, j: usize) -> bool {
        self.values.contains(i, j)
    }

    /// Sorted `(columns, values)` slices of combined-factor row `i`
    /// (`L` strictly left of the diagonal, `U` from it rightwards).
    pub(crate) fn row_entries(&self, i: usize) -> (&[usize], &[f64]) {
        self.values.row(i)
    }

    /// Mutable values of row `i` alongside its (immutable) sorted columns:
    /// numeric rewrites only, the structure cannot change through this view.
    pub(crate) fn row_entries_mut(&mut self, i: usize) -> (&[usize], &mut [f64]) {
        self.values.row_mut(i)
    }

    pub(crate) fn write(&mut self, i: usize, j: usize, v: f64) {
        // A single-search upsert; writing an exact zero to an absent position
        // is a no-op so the dynamic lists only grow when a genuine fill-in
        // appears.
        self.values.set_or_drop_zero(i, j, v);
    }

    /// Rows `i > j` with a structural entry in column `j` of `L`, as a
    /// borrowed sorted slice into the column index.
    pub(crate) fn lower_col_rows(&self, j: usize) -> &[usize] {
        self.values.col_rows_after(j, j)
    }

    /// Columns `j > i` with a structural entry in row `i` of `U`, as a
    /// borrowed sorted slice into the row layout.
    pub(crate) fn upper_row_cols(&self, i: usize) -> &[usize] {
        self.values.row_cols_after(i, i)
    }

    /// Solves `L U x = b`.
    pub fn solve(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Allocation-free variant of [`DynamicLuFactors::solve`]: substitutes
    /// in place inside `x`, reusing its capacity (the previous content is
    /// discarded).
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> LuResult<()> {
        if b.len() != self.n {
            return Err(LuError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        x.clear();
        x.extend_from_slice(b);
        for i in 0..self.n {
            let mut acc = x[i];
            let (cols, vals) = self.values.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if j < i {
                    acc -= v * x[j];
                } else {
                    break;
                }
            }
            x[i] = acc;
        }
        for i in (0..self.n).rev() {
            let mut acc = x[i];
            let mut diag = 0.0;
            let (cols, vals) = self.values.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if j > i {
                    acc -= v * x[j];
                } else if j == i {
                    diag = v;
                }
            }
            if !diag.is_finite() || diag.abs() < SINGULAR_TOL {
                return Err(LuError::SingularPivot {
                    index: i,
                    value: diag,
                });
            }
            x[i] = acc / diag;
        }
        Ok(())
    }

    /// Panel variant of [`DynamicLuFactors::solve_into`]: solves `n_rhs`
    /// systems stacked column-major in `b` (`n_rhs` stripes of length `n`),
    /// writing the solutions into `x` in the same layout.  The adjacency
    /// lists are traversed once per row for the whole panel; per column the
    /// floating-point sequence matches the single-RHS path exactly, so every
    /// stripe is bit-identical to a sequential solve.
    pub fn solve_many_into(&self, b: &[f64], n_rhs: usize, x: &mut Vec<f64>) -> LuResult<()> {
        let n = self.n;
        if b.len() != n * n_rhs {
            return Err(LuError::DimensionMismatch {
                expected: n * n_rhs,
                actual: b.len(),
            });
        }
        x.clear();
        x.extend_from_slice(b);
        for i in 0..n {
            let (cols, vals) = self.values.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if j < i {
                    for c in 0..n_rhs {
                        x[c * n + i] -= v * x[c * n + j];
                    }
                } else {
                    break;
                }
            }
        }
        for i in (0..n).rev() {
            let mut diag = 0.0;
            let (cols, vals) = self.values.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if j > i {
                    for c in 0..n_rhs {
                        x[c * n + i] -= v * x[c * n + j];
                    }
                } else if j == i {
                    diag = v;
                }
            }
            if !diag.is_finite() || diag.abs() < SINGULAR_TOL {
                return Err(LuError::SingularPivot {
                    index: i,
                    value: diag,
                });
            }
            for c in 0..n_rhs {
                x[c * n + i] /= diag;
            }
        }
        Ok(())
    }

    /// Every stored list node as `(row, col, value)`, row-major with
    /// ascending columns per row — **including explicitly stored zeros**.
    ///
    /// Bennett updates write through [`AdjacencyMatrix::set_or_drop_zero`],
    /// which keeps a zero landing on a *present* position as a stored entry;
    /// dropping those zeros on export would change `nnz()` (and with it the
    /// quality-loss metric and every downstream refresh decision), so the
    /// durable form must carry them.  Together with
    /// [`DynamicLuFactors::from_sorted_entries`] this is a bit-identical
    /// round trip: same structure, same values, same `nnz`.
    pub fn export_entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.n {
            let (cols, vals) = self.values.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                out.push((i, j, v));
            }
        }
        out
    }

    /// Rebuilds factors of order `n` from an [`export_entries`] list
    /// (row-major, ascending columns, in-bounds).  The adjacency lists are
    /// reconstructed node by node through the structural `set` path — zeros
    /// included — so the result is bit-identical to the exported factors.
    ///
    /// Entries out of bounds or out of order are rejected (the input is a
    /// decoded checkpoint payload, so the validation failure is a corrupt or
    /// version-skewed file, never a programming error on the hot path).
    ///
    /// [`export_entries`]: DynamicLuFactors::export_entries
    pub fn from_sorted_entries(n: usize, entries: &[(usize, usize, f64)]) -> LuResult<Self> {
        let mut values = AdjacencyMatrix::zeros(n, n);
        let mut last: Option<(usize, usize)> = None;
        for &(i, j, v) in entries {
            if i >= n || j >= n {
                return Err(LuError::EntryOutsideStructure { row: i, col: j });
            }
            if let Some(prev) = last {
                if (i, j) <= prev {
                    return Err(LuError::EntryOutsideStructure { row: i, col: j });
                }
            }
            last = Some((i, j));
            values.set(i, j, v);
        }
        values.reset_stats();
        Ok(DynamicLuFactors { n, values })
    }

    /// The lower factor `L` (with unit diagonal) as CSR.
    pub fn l_matrix(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.nnz());
        for i in 0..self.n {
            let (cols, vals) = self.values.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if j < i && v != 0.0 {
                    coo.push(i, j, v).expect("in bounds");
                }
            }
            coo.push(i, i, 1.0).expect("in bounds");
        }
        CsrMatrix::from_coo(&coo)
    }

    /// The upper factor `U` as CSR.
    pub fn u_matrix(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.nnz());
        for i in 0..self.n {
            let (cols, vals) = self.values.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if j == i || (j > i && v != 0.0) {
                    coo.push(i, j, v).expect("in bounds");
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Recomputes `L·U` for verification.
    pub fn reconstruct(&self) -> CsrMatrix {
        let l = self.l_matrix();
        let u = self.u_matrix();
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.nnz() * 4);
        for i in 0..self.n {
            let (lcols, lvals) = l.row(i);
            for (&k, &lv) in lcols.iter().zip(lvals.iter()) {
                let (ucols, uvals) = u.row(k);
                for (&j, &uv) in ucols.iter().zip(uvals.iter()) {
                    coo.push(i, j, lv * uv).expect("in bounds");
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::factorize_fresh;
    use clude_sparse::CooMatrix;

    fn sample_matrix() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 4);
        let entries = [
            (0, 0, 4.0),
            (0, 2, 1.0),
            (1, 0, -1.0),
            (1, 1, 5.0),
            (2, 1, -2.0),
            (2, 2, 6.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (3, 3, 3.0),
        ];
        for &(i, j, v) in &entries {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn export_import_round_trip_is_bit_identical() {
        let a = sample_matrix();
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        // Force an explicitly stored zero: writing 0.0 to a present position
        // keeps the list node (the Bennett write path does this routinely).
        dynamic.write(0, 2, 0.0);
        let entries = dynamic.export_entries();
        assert_eq!(entries.len(), dynamic.nnz());
        assert!(entries
            .iter()
            .any(|&(i, j, v)| i == 0 && j == 2 && v == 0.0));
        let rebuilt = DynamicLuFactors::from_sorted_entries(dynamic.n(), &entries).unwrap();
        assert_eq!(rebuilt.n(), dynamic.n());
        assert_eq!(rebuilt.nnz(), dynamic.nnz());
        assert_eq!(rebuilt.export_entries(), entries);
        // Same solves, bit for bit.
        let b = vec![1.0, -2.0, 0.5, 3.0];
        let x0 = dynamic.solve(&b).unwrap();
        let x1 = rebuilt.solve(&b).unwrap();
        for (a, b) in x0.iter().zip(x1.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn from_sorted_entries_rejects_bad_input() {
        // Out of bounds.
        let err = DynamicLuFactors::from_sorted_entries(2, &[(0, 5, 1.0)]).unwrap_err();
        assert!(matches!(err, LuError::EntryOutsideStructure { col: 5, .. }));
        // Out of order (decoded from a corrupt payload).
        let err =
            DynamicLuFactors::from_sorted_entries(3, &[(1, 1, 1.0), (0, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, LuError::EntryOutsideStructure { .. }));
        // Duplicate position.
        let err =
            DynamicLuFactors::from_sorted_entries(3, &[(1, 1, 1.0), (1, 1, 2.0)]).unwrap_err();
        assert!(matches!(err, LuError::EntryOutsideStructure { .. }));
    }

    #[test]
    fn dynamic_factorization_matches_static() {
        let a = sample_matrix();
        let dynamic = DynamicLuFactors::factorize(&a).unwrap();
        let fixed = factorize_fresh(&a).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((dynamic.l(i, j) - fixed.l(i, j)).abs() < 1e-14);
                assert!((dynamic.u(i, j) - fixed.u(i, j)).abs() < 1e-14);
            }
        }
        assert!(dynamic.reconstruct().max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn solve_matches_static_solve() {
        let a = sample_matrix();
        let dynamic = DynamicLuFactors::factorize(&a).unwrap();
        let fixed = factorize_fresh(&a).unwrap();
        let b = vec![0.5, -1.0, 2.0, 3.0];
        let xd = dynamic.solve(&b).unwrap();
        let xs = fixed.solve(&b).unwrap();
        for (u, v) in xd.iter().zip(xs.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        assert!(dynamic.solve(&[1.0]).is_err());
    }

    #[test]
    fn structural_counters_start_clean_and_track_writes() {
        let a = sample_matrix();
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        assert_eq!(dynamic.structural_stats(), StructuralStats::default());
        // A write to a brand-new position is a structural insert.
        dynamic.write(3, 1, 0.25);
        assert_eq!(dynamic.structural_stats().inserts, 1);
        // Writing an exact zero to an absent position does nothing.
        dynamic.write(1, 3, 0.0);
        assert_eq!(dynamic.structural_stats().inserts, 1);
        dynamic.reset_structural_stats();
        assert_eq!(dynamic.structural_stats(), StructuralStats::default());
    }

    #[test]
    fn triangular_views() {
        let a = sample_matrix();
        let dynamic = DynamicLuFactors::factorize(&a).unwrap();
        for (i, j, _) in dynamic.l_matrix().iter() {
            assert!(i >= j);
        }
        for (i, j, _) in dynamic.u_matrix().iter() {
            assert!(j >= i);
        }
        let lower0 = dynamic.lower_col_rows(0);
        assert!(lower0.iter().all(|&i| i > 0));
        let upper0 = dynamic.upper_row_cols(0);
        assert!(upper0.iter().all(|&j| j > 0));
    }
}
