//! Symbolic decomposition (the SD-phase of §2.3).
//!
//! Given the sparsity pattern of a square matrix, this module computes the
//! *fill-in pattern* `fp(A)` (Eq. 2 of the paper — the fill-path
//! characterisation of Rose & Tarjan) and the *symbolic sparsity pattern*
//! `s̃p(A) = sp(A) ∪ fp(A)` (Eq. 3).  `s̃p(A)` covers every position that can
//! become non-zero in the LU factors, so the data structures holding the
//! factors can be allocated before any numeric work.
//!
//! The computation is a symbolic Gaussian elimination: process pivots in
//! order and, for every pivot `k`, add `(i, j)` for each structurally
//! non-zero `(i, k)` below the pivot and `(k, j)` to its right.  This is
//! exactly the set defined by Eq. 2.

use clude_sparse::SparsityPattern;
use std::collections::BTreeSet;

/// The result of a symbolic decomposition.
#[derive(Debug, Clone)]
pub struct SymbolicDecomposition {
    /// The symbolic sparsity pattern `s̃p(A)` (always includes the diagonal).
    pub pattern: SparsityPattern,
    /// Number of fill-ins, `|s̃p(A)| − |sp(A) ∪ diag|`.
    pub fill_ins: usize,
}

impl SymbolicDecomposition {
    /// Size of the symbolic sparsity pattern, `|s̃p(A)|`.
    pub fn size(&self) -> usize {
        self.pattern.nnz()
    }
}

/// Computes the symbolic sparsity pattern `s̃p(A)` of a square pattern.
///
/// The diagonal is always included: LU factorization requires every pivot
/// position to exist, and the matrices the paper derives from graphs
/// (`A = I − dW`, shifted Laplacians) always carry a structural diagonal.
///
/// # Panics
/// Panics if the pattern is not square.
pub fn symbolic_decomposition(sp: &SparsityPattern) -> SymbolicDecomposition {
    assert_eq!(
        sp.n_rows(),
        sp.n_cols(),
        "symbolic decomposition needs a square pattern"
    );
    let n = sp.n_rows();
    // Working row/column sets of the progressively filled pattern.
    let mut rows: Vec<BTreeSet<usize>> = (0..n)
        .map(|i| sp.row(i).iter().copied().collect())
        .collect();
    let mut cols: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut base_nnz = 0usize;
    for (i, row) in rows.iter_mut().enumerate() {
        row.insert(i); // ensure the diagonal
    }
    for (i, row) in rows.iter().enumerate() {
        base_nnz += row.len();
        for &j in row {
            cols[j].insert(i);
        }
    }
    // Symbolic elimination.
    for k in 0..n {
        let below: Vec<usize> = cols[k].range(k + 1..).copied().collect();
        let right: Vec<usize> = rows[k].range(k + 1..).copied().collect();
        for &i in &below {
            for &j in &right {
                if rows[i].insert(j) {
                    cols[j].insert(i);
                }
            }
        }
    }
    let filled_rows: Vec<Vec<usize>> = rows
        .into_iter()
        .map(|set| set.into_iter().collect())
        .collect();
    let pattern = SparsityPattern::from_sorted_rows(n, filled_rows);
    let fill_ins = pattern.nnz() - base_nnz;
    SymbolicDecomposition { pattern, fill_ins }
}

/// The fill-in pattern `fp(A)`: positions of `s̃p(A)` that are not in `sp(A)`
/// (and not on the diagonal, which we always treat as structural).
pub fn fill_in_pattern(sp: &SparsityPattern) -> SparsityPattern {
    let symbolic = symbolic_decomposition(sp);
    let n = sp.n_rows();
    let entries = symbolic
        .pattern
        .iter()
        .filter(|&(i, j)| !(sp.contains(i, j) || i == j));
    SparsityPattern::from_entries(n, n, entries).expect("indices come from a valid pattern")
}

/// `|s̃p(A)|` without keeping the pattern (convenience for quality metrics).
pub fn symbolic_size(sp: &SparsityPattern) -> usize {
    symbolic_decomposition(sp).size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_sparse::SparsityPattern;

    /// The arrow-head pattern: dense first row and column, diagonal elsewhere.
    /// Eliminating the first pivot fills the entire matrix.
    fn arrowhead(n: usize) -> SparsityPattern {
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i));
            if i > 0 {
                entries.push((0, i));
                entries.push((i, 0));
            }
        }
        SparsityPattern::from_entries(n, n, entries).unwrap()
    }

    /// The same structure but with the hub last: no fill at all.
    fn reversed_arrowhead(n: usize) -> SparsityPattern {
        let mut entries = Vec::new();
        let hub = n - 1;
        for i in 0..n {
            entries.push((i, i));
            if i != hub {
                entries.push((hub, i));
                entries.push((i, hub));
            }
        }
        SparsityPattern::from_entries(n, n, entries).unwrap()
    }

    #[test]
    fn diagonal_pattern_has_no_fill() {
        let sp = SparsityPattern::identity(5);
        let sd = symbolic_decomposition(&sp);
        assert_eq!(sd.fill_ins, 0);
        assert_eq!(sd.size(), 5);
        assert!(fill_in_pattern(&sp).nnz() == 0);
    }

    #[test]
    fn arrowhead_fills_completely() {
        let n = 5;
        let sd = symbolic_decomposition(&arrowhead(n));
        assert_eq!(
            sd.size(),
            n * n,
            "bad ordering of an arrowhead fills everything"
        );
        // fill-ins = n^2 - (3n - 2)
        assert_eq!(sd.fill_ins, n * n - (3 * n - 2));
    }

    #[test]
    fn reversed_arrowhead_has_no_fill() {
        let n = 5;
        let sd = symbolic_decomposition(&reversed_arrowhead(n));
        assert_eq!(sd.fill_ins, 0);
        assert_eq!(sd.size(), 3 * n - 2);
    }

    #[test]
    fn fill_path_example_from_paper_definition() {
        // Path 0 -> 1 -> 2 with all diagonal entries: (2,0) and (0,2) are
        // *not* fill because the intermediate node (1) is larger than 0;
        // but eliminating node 0 of a pattern with (1,0) and (0,2) creates
        // (1,2).
        let sp = SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 1), (2, 2), (1, 0), (0, 2)])
            .unwrap();
        let fp = fill_in_pattern(&sp);
        assert!(fp.contains(1, 2));
        assert_eq!(fp.nnz(), 1);
    }

    #[test]
    fn symbolic_pattern_contains_original_and_diagonal() {
        let sp = SparsityPattern::from_entries(4, 4, vec![(0, 3), (3, 0), (1, 2)]).unwrap();
        let sd = symbolic_decomposition(&sp);
        for (i, j) in sp.iter() {
            assert!(sd.pattern.contains(i, j));
        }
        for i in 0..4 {
            assert!(sd.pattern.contains(i, i));
        }
    }

    #[test]
    fn monotonicity_lemma_1() {
        // Lemma 1: sp(Aa) ⊆ sp(Ab) implies s̃p(Aa) ⊆ s̃p(Ab).
        let small =
            SparsityPattern::from_entries(5, 5, vec![(0, 1), (1, 0), (2, 4), (4, 2), (1, 3)])
                .unwrap();
        let mut big = small.clone();
        big.insert(0, 4);
        big.insert(3, 2);
        let sd_small = symbolic_decomposition(&small);
        let sd_big = symbolic_decomposition(&big);
        assert!(sd_small.pattern.is_subset_of(&sd_big.pattern));
    }

    #[test]
    fn symbolic_size_matches_decomposition() {
        let sp = arrowhead(6);
        assert_eq!(symbolic_size(&sp), symbolic_decomposition(&sp).size());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular_patterns() {
        symbolic_decomposition(&SparsityPattern::empty(2, 3));
    }
}
