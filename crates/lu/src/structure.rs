//! Static LU storage structures.
//!
//! A [`LuStructure`] is the "universal adjacency-lists structure" idea of the
//! paper made concrete: it fixes, ahead of any numeric work, every position
//! that the combined factors `Â = L + U` may occupy.  CLUDE builds one such
//! structure per cluster from the universal symbolic sparsity pattern
//! `s̃p(A_∪^{O_∪})`; the baseline algorithms build one per matrix from that
//! matrix's own `s̃p`.  Because the structure is immutable, the numeric phase
//! and the Bennett updates never perform structural maintenance — which is
//! precisely where CLUDE gets its speed.

use crate::error::{LuError, LuResult};
use crate::symbolic::symbolic_decomposition;
use clude_sparse::SparsityPattern;
use std::sync::Arc;

/// An immutable slot layout for the combined LU factors of one (or many)
/// matrices sharing a symbolic sparsity pattern.
///
/// Rows are stored contiguously with sorted column indices; the strictly
/// lower part of every column is additionally indexed so Bennett's algorithm
/// can walk "column `k` of `L`" directly.
#[derive(Debug, Clone, PartialEq)]
pub struct LuStructure {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Slot of the diagonal entry of each row.
    diag_slot: Vec<usize>,
    /// CSC-like view of the strictly lower triangle: for every column `j`,
    /// the rows `i > j` with a structural entry, and the row-major slot of
    /// each such entry.
    lower_col_ptr: Vec<usize>,
    lower_rows: Vec<usize>,
    lower_slots: Vec<usize>,
}

impl LuStructure {
    /// Builds a structure from an arbitrary square pattern.
    ///
    /// The pattern is first closed under symbolic elimination (and the
    /// diagonal added), so the resulting structure can hold the factors of
    /// any matrix whose sparsity pattern is a subset of `pattern`.
    pub fn from_pattern(pattern: &SparsityPattern) -> LuResult<Self> {
        if pattern.n_rows() != pattern.n_cols() {
            return Err(LuError::NotSquare {
                n_rows: pattern.n_rows(),
                n_cols: pattern.n_cols(),
            });
        }
        let closed = symbolic_decomposition(pattern).pattern;
        Ok(Self::from_closed_pattern_unchecked(&closed))
    }

    /// Builds a structure from a pattern that is already a symbolic sparsity
    /// pattern (i.e. closed under elimination and containing the diagonal).
    ///
    /// This is the entry point CLUDE uses after performing the symbolic
    /// decomposition of `A_∪^{O_∪}` explicitly (Algorithm 3, line 3); it does
    /// not repeat the closure.
    pub fn from_closed_pattern_unchecked(closed: &SparsityPattern) -> Self {
        debug_assert_eq!(closed.n_rows(), closed.n_cols());
        let n = closed.n_rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(closed.nnz());
        let mut diag_slot = vec![usize::MAX; n];
        row_ptr.push(0);
        for i in 0..n {
            for &j in closed.row(i) {
                if j == i {
                    diag_slot[i] = col_idx.len();
                }
                col_idx.push(j);
            }
            row_ptr.push(col_idx.len());
        }
        debug_assert!(
            diag_slot.iter().all(|&s| s != usize::MAX),
            "a closed pattern always contains the diagonal"
        );
        // Strictly-lower column index.
        let mut lower_counts = vec![0usize; n];
        for i in 0..n {
            for slot in row_ptr[i]..row_ptr[i + 1] {
                let j = col_idx[slot];
                if j < i {
                    lower_counts[j] += 1;
                }
            }
        }
        let mut lower_col_ptr = Vec::with_capacity(n + 1);
        lower_col_ptr.push(0);
        for j in 0..n {
            lower_col_ptr.push(lower_col_ptr[j] + lower_counts[j]);
        }
        let total_lower = lower_col_ptr[n];
        let mut lower_rows = vec![0usize; total_lower];
        let mut lower_slots = vec![0usize; total_lower];
        let mut next = lower_col_ptr.clone();
        for i in 0..n {
            for slot in row_ptr[i]..row_ptr[i + 1] {
                let j = col_idx[slot];
                if j < i {
                    let pos = next[j];
                    lower_rows[pos] = i;
                    lower_slots[pos] = slot;
                    next[j] += 1;
                }
            }
        }
        LuStructure {
            n,
            row_ptr,
            col_idx,
            diag_slot,
            lower_col_ptr,
            lower_rows,
            lower_slots,
        }
    }

    /// Matrix order `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of slots, i.e. `|s̃p|` of the underlying pattern.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The slot range of row `i`.
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.row_ptr[i]..self.row_ptr[i + 1]
    }

    /// The column index stored at `slot`.
    #[inline]
    pub fn col_of_slot(&self, slot: usize) -> usize {
        self.col_idx[slot]
    }

    /// Columns of row `i`, ascending.
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Slot of the diagonal entry of row `i`.
    #[inline]
    pub fn diag_slot(&self, i: usize) -> usize {
        self.diag_slot[i]
    }

    /// The slot of position `(i, j)`, or `None` when the structure does not
    /// cover it.
    pub fn slot(&self, i: usize, j: usize) -> Option<usize> {
        if i >= self.n || j >= self.n {
            return None;
        }
        let range = self.row_range(i);
        let row = &self.col_idx[range.clone()];
        row.binary_search(&j).ok().map(|pos| range.start + pos)
    }

    /// Returns `true` when the structure covers `(i, j)`.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.slot(i, j).is_some()
    }

    /// Slots of the upper-triangular (including diagonal) part of row `i`,
    /// i.e. the `U` entries of that row in ascending column order.
    pub fn upper_row_slots(&self, i: usize) -> std::ops::Range<usize> {
        self.diag_slot[i]..self.row_ptr[i + 1]
    }

    /// Slots of the strictly-lower part of row `i` (its `L` entries),
    /// ascending column order.
    pub fn lower_row_slots(&self, i: usize) -> std::ops::Range<usize> {
        self.row_ptr[i]..self.diag_slot[i]
    }

    /// The strictly-upper columns of row `i` (its `U` entries past the
    /// diagonal), ascending — a borrowed slice into the row-major layout, so
    /// Bennett's sweep can walk "row `i` of `U`" without materialising it.
    pub fn upper_row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.diag_slot[i] + 1..self.row_ptr[i + 1]]
    }

    /// The strictly-lower entries of column `j`: parallel slices of row
    /// indices (`i > j`, ascending) and their row-major slots.
    pub fn lower_col(&self, j: usize) -> (&[usize], &[usize]) {
        let range = self.lower_col_ptr[j]..self.lower_col_ptr[j + 1];
        (&self.lower_rows[range.clone()], &self.lower_slots[range])
    }

    /// The pattern covered by this structure.
    pub fn pattern(&self) -> SparsityPattern {
        let rows = (0..self.n)
            .map(|i| self.row_cols(i).to_vec())
            .collect::<Vec<_>>();
        SparsityPattern::from_sorted_rows(self.n, rows)
    }

    /// Wraps the structure in an [`Arc`] so many factor sets (one per matrix
    /// of a cluster) can share it without copying.
    pub fn into_shared(self) -> Arc<LuStructure> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_sparse::SparsityPattern;

    fn sample_structure() -> LuStructure {
        // Pattern with one fill-in: (1,0),(0,2) present => fill at (1,2).
        let sp = SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 1), (2, 2), (1, 0), (0, 2)])
            .unwrap();
        LuStructure::from_pattern(&sp).unwrap()
    }

    #[test]
    fn closure_adds_fill_slots() {
        let s = sample_structure();
        assert_eq!(s.n(), 3);
        // 5 original (incl. diag) + 1 fill at (1,2).
        assert_eq!(s.nnz(), 6);
        assert!(s.contains(1, 2));
        assert!(!s.contains(2, 0));
    }

    #[test]
    fn diag_and_row_partitions() {
        let s = sample_structure();
        for i in 0..3 {
            assert_eq!(s.col_of_slot(s.diag_slot(i)), i);
            let lower: Vec<usize> = s.lower_row_slots(i).map(|sl| s.col_of_slot(sl)).collect();
            assert!(lower.iter().all(|&c| c < i));
            let upper: Vec<usize> = s.upper_row_slots(i).map(|sl| s.col_of_slot(sl)).collect();
            assert!(upper.iter().all(|&c| c >= i));
            assert_eq!(upper[0], i);
        }
    }

    #[test]
    fn lower_col_lists_match_row_slots() {
        let s = sample_structure();
        let (rows, slots) = s.lower_col(0);
        assert_eq!(rows, &[1]);
        assert_eq!(s.col_of_slot(slots[0]), 0);
        let (rows2, _) = s.lower_col(2);
        assert!(rows2.is_empty());
    }

    #[test]
    fn slot_lookup() {
        let s = sample_structure();
        assert!(s.slot(0, 2).is_some());
        assert!(s.slot(2, 0).is_none());
        assert!(s.slot(5, 0).is_none());
        assert_eq!(s.slot(1, 1), Some(s.diag_slot(1)));
    }

    #[test]
    fn pattern_roundtrip_is_closed() {
        let s = sample_structure();
        let p = s.pattern();
        assert_eq!(p.nnz(), s.nnz());
        // Closed pattern: building again from it changes nothing.
        let s2 = LuStructure::from_pattern(&p).unwrap();
        assert_eq!(s2.nnz(), s.nnz());
        let s3 = LuStructure::from_closed_pattern_unchecked(&p);
        assert_eq!(s3, s2);
    }

    #[test]
    fn rejects_rectangular_pattern() {
        let err = LuStructure::from_pattern(&SparsityPattern::empty(2, 3)).unwrap_err();
        assert!(matches!(err, LuError::NotSquare { .. }));
    }

    #[test]
    fn shared_structure_is_cheap_to_clone() {
        let s = sample_structure().into_shared();
        let s2 = Arc::clone(&s);
        assert_eq!(s.nnz(), s2.nnz());
        assert_eq!(Arc::strong_count(&s), 2);
    }
}
