//! Solving the original linear system through reordered factors.
//!
//! Section 2.2 of the paper: if `A^O = P A Q` was decomposed, then
//! `A x = b  ⇔  A^O (Q⁻¹ x) = P b`, so a query is answered by permuting the
//! right-hand side, running forward/backward substitution, and permuting the
//! solution back — all `O(n)` besides the substitutions themselves.

// lint: hot-path

use crate::dynamic::DynamicLuFactors;
use crate::error::LuResult;
use crate::factors::LuFactors;
use clude_sparse::Ordering;

/// Anything that can solve `L U x' = b'` by substitution.
pub trait TriangularSolve {
    /// Solves the factored (reordered) system for one right-hand side,
    /// substituting in place inside `x` (its capacity is reused, its previous
    /// content discarded).
    fn solve_factored_into(&self, b: &[f64], x: &mut Vec<f64>) -> LuResult<()>;

    /// Solves the factored (reordered) system for one right-hand side.
    fn solve_factored(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        // lint: allow(alloc-hot-path) — owning convenience wrapper; the hot
        // loops call `solve_factored_into` with a reused buffer instead.
        let mut x = Vec::new();
        self.solve_factored_into(b, &mut x)?;
        Ok(x)
    }

    /// Panel variant: solves `n_rhs` factored systems whose right-hand sides
    /// are stacked column-major in `b` (`n_rhs` contiguous stripes), writing
    /// the solutions into `x` in the same layout.  Implementations must keep
    /// every stripe bit-identical to a sequential
    /// [`TriangularSolve::solve_factored_into`] call; the default honours
    /// that trivially by solving stripe by stripe,
    /// while the in-tree factor types override it with single-traversal
    /// panel kernels.
    fn solve_many_factored_into(&self, b: &[f64], n_rhs: usize, x: &mut Vec<f64>) -> LuResult<()> {
        let n = b.len().checked_div(n_rhs).unwrap_or(0);
        // lint: allow(alloc-hot-path) — compatibility default for external
        // impls only; both in-tree factor types override with panel kernels.
        let mut column = Vec::new();
        x.clear();
        for c in 0..n_rhs {
            self.solve_factored_into(&b[c * n..(c + 1) * n], &mut column)?;
            x.extend_from_slice(&column);
        }
        Ok(())
    }
}

impl TriangularSolve for LuFactors {
    fn solve_factored_into(&self, b: &[f64], x: &mut Vec<f64>) -> LuResult<()> {
        self.solve_into(b, x)
    }

    fn solve_many_factored_into(&self, b: &[f64], n_rhs: usize, x: &mut Vec<f64>) -> LuResult<()> {
        self.solve_many_into(b, n_rhs, x)
    }
}

impl TriangularSolve for DynamicLuFactors {
    fn solve_factored_into(&self, b: &[f64], x: &mut Vec<f64>) -> LuResult<()> {
        self.solve_into(b, x)
    }

    fn solve_many_factored_into(&self, b: &[f64], n_rhs: usize, x: &mut Vec<f64>) -> LuResult<()> {
        self.solve_many_into(b, n_rhs, x)
    }
}

/// Reusable buffers of [`solve_original_into`]: the permuted right-hand side
/// `b' = P b` and the reordered solution `x'`.
///
/// A solve over factors of order `n` grows both buffers to `n` once; as long
/// as the scratch is reused across solves of no larger order, no further
/// allocations happen — this is what lets the engine's coupled block sweeps
/// run allocation-free (the ROADMAP's `solve_into` latency item).
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    permuted: Vec<f64>,
    factored: Vec<f64>,
}

impl SolveScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    /// A scratch with both buffers pre-sized for factors of order `n`.
    pub fn with_order(n: usize) -> Self {
        SolveScratch {
            // lint: allow(alloc-hot-path) — constructor pre-sizing: this
            // one-time allocation is what keeps later solves allocation-free.
            permuted: Vec::with_capacity(n),
            // lint: allow(alloc-hot-path) — constructor pre-sizing: this
            // one-time allocation is what keeps later solves allocation-free.
            factored: Vec::with_capacity(n),
        }
    }
}

/// Reusable buffers of [`solve_original_many_into`]: the permuted panel, the
/// reordered solution panel, and a single-stripe staging column used while
/// permuting one stripe at a time (the permutation helpers are single-RHS;
/// permutation is pure data movement, so staging preserves bit-identity).
#[derive(Debug, Clone, Default)]
pub struct PanelScratch {
    permuted: Vec<f64>,
    factored: Vec<f64>,
    column: Vec<f64>,
}

impl PanelScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        PanelScratch::default()
    }

    /// A scratch pre-sized for panels of `n_rhs` systems of order `n`.
    pub fn with_panel(n: usize, n_rhs: usize) -> Self {
        PanelScratch {
            // lint: allow(alloc-hot-path) — constructor pre-sizing: this
            // one-time allocation keeps later panel solves allocation-free.
            permuted: Vec::with_capacity(n * n_rhs),
            // lint: allow(alloc-hot-path) — constructor pre-sizing: this
            // one-time allocation keeps later panel solves allocation-free.
            factored: Vec::with_capacity(n * n_rhs),
            // lint: allow(alloc-hot-path) — constructor pre-sizing: this
            // one-time allocation keeps later panel solves allocation-free.
            column: Vec::with_capacity(n),
        }
    }
}

/// Solves the *original* system `A x = b` given the factors of `A^O = P A Q`
/// and the ordering `O = (P, Q)`.
pub fn solve_original<F: TriangularSolve>(
    factors: &F,
    ordering: &Ordering,
    b: &[f64],
) -> LuResult<Vec<f64>> {
    let mut scratch = SolveScratch::new();
    // lint: allow(alloc-hot-path) — owning convenience wrapper; repeated
    // solves use `solve_original_into` with a caller-held scratch instead.
    let mut x = Vec::new();
    solve_original_into(factors, ordering, b, &mut scratch, &mut x)?;
    Ok(x)
}

/// Allocation-free variant of [`solve_original`]: permutes, substitutes and
/// recovers through the reused `scratch` buffers, writing the solution of the
/// original system into `out` (its capacity is reused, its previous content
/// discarded).
pub fn solve_original_into<F: TriangularSolve>(
    factors: &F,
    ordering: &Ordering,
    b: &[f64],
    scratch: &mut SolveScratch,
    out: &mut Vec<f64>,
) -> LuResult<()> {
    ordering
        .permute_rhs_into(b, &mut scratch.permuted)
        .map_err(|_| crate::error::LuError::DimensionMismatch {
            expected: ordering.row().len(),
            actual: b.len(),
        })?;
    factors.solve_factored_into(&scratch.permuted, &mut scratch.factored)?;
    ordering
        .recover_solution_into(&scratch.factored, out)
        .map_err(|_| crate::error::LuError::DimensionMismatch {
            expected: ordering.col().len(),
            actual: scratch.factored.len(),
        })
}

/// Panel variant of [`solve_original_into`]: solves `n_rhs` original systems
/// whose right-hand sides are stacked column-major in `b`, writing the
/// solutions into `out` in the same layout.
///
/// Each stripe is permuted through the scratch staging column (data movement
/// only — no floating-point arithmetic), the whole panel runs through one
/// [`TriangularSolve::solve_many_factored_into`] traversal, and each solution
/// stripe is permuted back.  Every stripe of `out` is bit-identical to a
/// sequential [`solve_original_into`] call on that stripe.
pub fn solve_original_many_into<F: TriangularSolve>(
    factors: &F,
    ordering: &Ordering,
    b: &[f64],
    n_rhs: usize,
    scratch: &mut PanelScratch,
    out: &mut Vec<f64>,
) -> LuResult<()> {
    let n = ordering.row().len();
    if b.len() != n * n_rhs {
        return Err(crate::error::LuError::DimensionMismatch {
            expected: n * n_rhs,
            actual: b.len(),
        });
    }
    scratch.permuted.clear();
    for c in 0..n_rhs {
        ordering
            .permute_rhs_into(&b[c * n..(c + 1) * n], &mut scratch.column)
            .map_err(|_| crate::error::LuError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            })?;
        scratch.permuted.extend_from_slice(&scratch.column);
    }
    factors.solve_many_factored_into(&scratch.permuted, n_rhs, &mut scratch.factored)?;
    out.clear();
    for c in 0..n_rhs {
        ordering
            .recover_solution_into(&scratch.factored[c * n..(c + 1) * n], &mut scratch.column)
            .map_err(|_| crate::error::LuError::DimensionMismatch {
                expected: ordering.col().len(),
                actual: scratch.factored.len(),
            })?;
        out.extend_from_slice(&scratch.column);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::LuFactors;
    use crate::ordering::markowitz_ordering;
    use crate::structure::LuStructure;
    use clude_sparse::{CooMatrix, CsrMatrix};

    fn sample_matrix() -> CsrMatrix {
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 6.0).unwrap();
        }
        for &(i, j, v) in &[
            (0, 1, 1.0),
            (1, 2, -1.0),
            (2, 0, 0.5),
            (3, 1, 2.0),
            (4, 2, -0.5),
            (0, 4, 1.5),
        ] {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn reordered_solve_matches_dense_solution() {
        let a = sample_matrix();
        let result = markowitz_ordering(&a.pattern());
        let a_reordered = a.reorder(&result.ordering).unwrap();
        let structure = LuStructure::from_pattern(&a_reordered.pattern())
            .unwrap()
            .into_shared();
        let factors = LuFactors::factorize(structure, &a_reordered).unwrap();
        let b = vec![1.0, 0.0, -2.0, 3.0, 0.5];
        let x = solve_original(&factors, &result.ordering, &b).unwrap();
        let x_dense = a.to_dense().solve_gaussian(&b).unwrap();
        for (u, v) in x.iter().zip(x_dense.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn dynamic_factors_solve_through_ordering_too() {
        let a = sample_matrix();
        let result = markowitz_ordering(&a.pattern());
        let a_reordered = a.reorder(&result.ordering).unwrap();
        let factors = DynamicLuFactors::factorize(&a_reordered).unwrap();
        let b = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let x = solve_original(&factors, &result.ordering, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_into_reuses_scratch_bit_identically() {
        // One scratch reused across systems of different orders and both
        // factor back-ends must reproduce the allocating path exactly.
        let mut scratch = SolveScratch::with_order(5);
        let mut out = Vec::new();

        let a = sample_matrix();
        let result = markowitz_ordering(&a.pattern());
        let a_reordered = a.reorder(&result.ordering).unwrap();
        let dynamic = DynamicLuFactors::factorize(&a_reordered).unwrap();
        let structure = LuStructure::from_pattern(&a_reordered.pattern())
            .unwrap()
            .into_shared();
        let static_f = LuFactors::factorize(structure, &a_reordered).unwrap();

        for b in [
            vec![1.0, 0.0, -2.0, 3.0, 0.5],
            vec![0.25, -1.5, 4.0, 0.0, 2.0],
        ] {
            let expected = solve_original(&dynamic, &result.ordering, &b).unwrap();
            solve_original_into(&dynamic, &result.ordering, &b, &mut scratch, &mut out).unwrap();
            assert_eq!(out, expected, "dynamic solve_into drifted");
            let expected = solve_original(&static_f, &result.ordering, &b).unwrap();
            solve_original_into(&static_f, &result.ordering, &b, &mut scratch, &mut out).unwrap();
            assert_eq!(out, expected, "static solve_into drifted");
        }

        // A smaller system after a larger one: stale capacity must not leak.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 4.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        let small = CsrMatrix::from_coo(&coo);
        let ordering = clude_sparse::Ordering::identity(2);
        let factors = DynamicLuFactors::factorize(&small).unwrap();
        solve_original_into(&factors, &ordering, &[4.0, 8.0], &mut scratch, &mut out).unwrap();
        assert_eq!(
            out,
            solve_original(&factors, &ordering, &[4.0, 8.0]).unwrap()
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn wrong_rhs_length_is_reported() {
        let a = sample_matrix();
        let result = markowitz_ordering(&a.pattern());
        let a_reordered = a.reorder(&result.ordering).unwrap();
        let factors = DynamicLuFactors::factorize(&a_reordered).unwrap();
        assert!(solve_original(&factors, &result.ordering, &[1.0, 2.0]).is_err());
    }
}
