//! Solving the original linear system through reordered factors.
//!
//! Section 2.2 of the paper: if `A^O = P A Q` was decomposed, then
//! `A x = b  ⇔  A^O (Q⁻¹ x) = P b`, so a query is answered by permuting the
//! right-hand side, running forward/backward substitution, and permuting the
//! solution back — all `O(n)` besides the substitutions themselves.

use crate::dynamic::DynamicLuFactors;
use crate::error::LuResult;
use crate::factors::LuFactors;
use clude_sparse::Ordering;

/// Anything that can solve `L U x' = b'` by substitution.
pub trait TriangularSolve {
    /// Solves the factored (reordered) system for one right-hand side.
    fn solve_factored(&self, b: &[f64]) -> LuResult<Vec<f64>>;
}

impl TriangularSolve for LuFactors {
    fn solve_factored(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        self.solve(b)
    }
}

impl TriangularSolve for DynamicLuFactors {
    fn solve_factored(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        self.solve(b)
    }
}

/// Solves the *original* system `A x = b` given the factors of `A^O = P A Q`
/// and the ordering `O = (P, Q)`.
pub fn solve_original<F: TriangularSolve>(
    factors: &F,
    ordering: &Ordering,
    b: &[f64],
) -> LuResult<Vec<f64>> {
    let b_prime =
        ordering
            .permute_rhs(b)
            .map_err(|_| crate::error::LuError::DimensionMismatch {
                expected: ordering.row().len(),
                actual: b.len(),
            })?;
    let x_prime = factors.solve_factored(&b_prime)?;
    ordering
        .recover_solution(&x_prime)
        .map_err(|_| crate::error::LuError::DimensionMismatch {
            expected: ordering.col().len(),
            actual: x_prime.len(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::LuFactors;
    use crate::ordering::markowitz_ordering;
    use crate::structure::LuStructure;
    use clude_sparse::{CooMatrix, CsrMatrix};

    fn sample_matrix() -> CsrMatrix {
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 6.0).unwrap();
        }
        for &(i, j, v) in &[
            (0, 1, 1.0),
            (1, 2, -1.0),
            (2, 0, 0.5),
            (3, 1, 2.0),
            (4, 2, -0.5),
            (0, 4, 1.5),
        ] {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn reordered_solve_matches_dense_solution() {
        let a = sample_matrix();
        let result = markowitz_ordering(&a.pattern());
        let a_reordered = a.reorder(&result.ordering).unwrap();
        let structure = LuStructure::from_pattern(&a_reordered.pattern())
            .unwrap()
            .into_shared();
        let factors = LuFactors::factorize(structure, &a_reordered).unwrap();
        let b = vec![1.0, 0.0, -2.0, 3.0, 0.5];
        let x = solve_original(&factors, &result.ordering, &b).unwrap();
        let x_dense = a.to_dense().solve_gaussian(&b).unwrap();
        for (u, v) in x.iter().zip(x_dense.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn dynamic_factors_solve_through_ordering_too() {
        let a = sample_matrix();
        let result = markowitz_ordering(&a.pattern());
        let a_reordered = a.reorder(&result.ordering).unwrap();
        let factors = DynamicLuFactors::factorize(&a_reordered).unwrap();
        let b = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let x = solve_original(&factors, &result.ordering, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn wrong_rhs_length_is_reported() {
        let a = sample_matrix();
        let result = markowitz_ordering(&a.pattern());
        let a_reordered = a.reorder(&result.ordering).unwrap();
        let factors = DynamicLuFactors::factorize(&a_reordered).unwrap();
        assert!(solve_original(&factors, &result.ordering, &[1.0, 2.0]).is_err());
    }
}
