//! Numeric LU factors over a static structure (the ND-phase of §2.3).
//!
//! [`LuFactors`] stores the combined factors `Â = L + U` of one matrix in the
//! slot layout of a shared [`LuStructure`].  `L` is unit lower triangular
//! (its implicit diagonal is not stored); the diagonal slots hold the pivots
//! of `U`.  The numeric phase is a row-wise sparse Gaussian elimination
//! (equivalent to Crout/Doolittle) that scatters each row into a dense
//! workspace, eliminates against the previously computed rows of `U`, and
//! gathers the result back into the slots — no structural work happens here,
//! by construction.

use crate::error::{LuError, LuResult};
use crate::structure::LuStructure;
use clude_sparse::{CooMatrix, CsrMatrix};
use std::sync::Arc;

/// Pivot magnitudes below this threshold are treated as singular.
pub const SINGULAR_TOL: f64 = 1e-300;

/// The numeric LU factors of one matrix, laid out over a shared structure.
#[derive(Debug, Clone)]
pub struct LuFactors {
    structure: Arc<LuStructure>,
    values: Vec<f64>,
}

impl LuFactors {
    /// Factorizes `a` over the given structure.
    ///
    /// Every structural entry of `a` must be covered by the structure; the
    /// structure may cover more (those slots simply hold zeros, which is how
    /// CLUDE shares one universal structure across a whole cluster).
    pub fn factorize(structure: Arc<LuStructure>, a: &CsrMatrix) -> LuResult<Self> {
        if !a.is_square() {
            return Err(LuError::NotSquare {
                n_rows: a.n_rows(),
                n_cols: a.n_cols(),
            });
        }
        if a.n_rows() != structure.n() {
            return Err(LuError::DimensionMismatch {
                expected: structure.n(),
                actual: a.n_rows(),
            });
        }
        let n = structure.n();
        let mut values = vec![0.0; structure.nnz()];
        let mut work = vec![0.0; n];
        for i in 0..n {
            // Scatter row i of A into the workspace over the structure's row.
            for slot in structure.row_range(i) {
                work[structure.col_of_slot(slot)] = 0.0;
            }
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if !structure.contains(i, j) {
                    return Err(LuError::EntryOutsideStructure { row: i, col: j });
                }
                work[j] = v;
            }
            // Eliminate with previously computed rows of U.
            for slot in structure.lower_row_slots(i) {
                let k = structure.col_of_slot(slot);
                let pivot = values[structure.diag_slot(k)];
                let lik = work[k] / pivot;
                work[k] = lik;
                if lik != 0.0 {
                    for uslot in structure.upper_row_slots(k).skip(1) {
                        let j = structure.col_of_slot(uslot);
                        work[j] -= lik * values[uslot];
                    }
                }
            }
            // Check the pivot and gather the row back into the slots.
            let pivot = work[i];
            if !pivot.is_finite() || pivot.abs() < SINGULAR_TOL {
                return Err(LuError::SingularPivot {
                    index: i,
                    value: pivot,
                });
            }
            for slot in structure.row_range(i) {
                values[slot] = work[structure.col_of_slot(slot)];
            }
        }
        Ok(LuFactors { structure, values })
    }

    /// The shared structure underlying these factors.
    pub fn structure(&self) -> &Arc<LuStructure> {
        &self.structure
    }

    /// Matrix order `n`.
    pub fn n(&self) -> usize {
        self.structure.n()
    }

    /// Number of slots (`|s̃p|` of the structure), i.e. the size of the
    /// decomposed representation `Â`.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of slots holding a numerically non-zero value.  With a
    /// structure tailored to the matrix this approximates `|sp(Â)|`; with a
    /// universal structure it shows how much of the slack is actually used.
    pub fn numeric_nnz(&self) -> usize {
        self.values.iter().filter(|v| **v != 0.0).count()
    }

    /// The value of `L(i, j)` (`i > j`); the implicit unit diagonal and zeros
    /// outside the structure are returned as such.
    pub fn l(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        if j > i {
            return 0.0;
        }
        self.structure
            .slot(i, j)
            .map_or(0.0, |slot| self.values[slot])
    }

    /// The value of `U(i, j)` (`j ≥ i`); zeros outside the structure are
    /// returned as such.
    pub fn u(&self, i: usize, j: usize) -> f64 {
        if j < i {
            return 0.0;
        }
        self.structure
            .slot(i, j)
            .map_or(0.0, |slot| self.values[slot])
    }

    /// Raw slot value access (shared with the Bennett update code).
    pub(crate) fn value(&self, slot: usize) -> f64 {
        self.values[slot]
    }

    /// Raw mutable slot value access (shared with the Bennett update code).
    pub(crate) fn value_mut(&mut self, slot: usize) -> &mut f64 {
        &mut self.values[slot]
    }

    /// Solves `L U x = b` by forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Allocation-free variant of [`LuFactors::solve`]: substitutes in place
    /// inside `x`, reusing its capacity (the previous content is discarded).
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> LuResult<()> {
        let n = self.n();
        if b.len() != n {
            return Err(LuError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        x.clear();
        x.extend_from_slice(b);
        // Forward: L y = b (unit diagonal).
        for i in 0..n {
            let mut acc = x[i];
            for slot in self.structure.lower_row_slots(i) {
                let k = self.structure.col_of_slot(slot);
                acc -= self.values[slot] * x[k];
            }
            x[i] = acc;
        }
        // Backward: U x = y.
        for i in (0..n).rev() {
            let mut acc = x[i];
            let mut upper = self.structure.upper_row_slots(i);
            let diag_slot = upper.next().expect("diagonal always present");
            for slot in upper {
                let j = self.structure.col_of_slot(slot);
                acc -= self.values[slot] * x[j];
            }
            let pivot = self.values[diag_slot];
            if !pivot.is_finite() || pivot.abs() < SINGULAR_TOL {
                return Err(LuError::SingularPivot {
                    index: i,
                    value: pivot,
                });
            }
            x[i] = acc / pivot;
        }
        Ok(())
    }

    /// Panel variant of [`LuFactors::solve_into`]: solves `n_rhs` systems
    /// whose right-hand sides are stacked column-major in `b` (`n_rhs`
    /// contiguous stripes of length `n`), writing the solutions into `x` in
    /// the same layout.
    ///
    /// The factor structure is traversed **once** for the whole panel: the
    /// loop order is rows outer, structural slots middle, panel columns
    /// inner.  Per panel column the floating-point operation sequence is
    /// exactly that of [`LuFactors::solve_into`], so each stripe of the
    /// result is bit-identical to a sequential single-RHS solve.
    pub fn solve_many_into(&self, b: &[f64], n_rhs: usize, x: &mut Vec<f64>) -> LuResult<()> {
        let n = self.n();
        if b.len() != n * n_rhs {
            return Err(LuError::DimensionMismatch {
                expected: n * n_rhs,
                actual: b.len(),
            });
        }
        x.clear();
        x.extend_from_slice(b);
        // Forward: L y = b (unit diagonal), all panel columns per slot.
        for i in 0..n {
            for slot in self.structure.lower_row_slots(i) {
                let k = self.structure.col_of_slot(slot);
                let v = self.values[slot];
                for c in 0..n_rhs {
                    x[c * n + i] -= v * x[c * n + k];
                }
            }
        }
        // Backward: U x = y.
        for i in (0..n).rev() {
            let mut upper = self.structure.upper_row_slots(i);
            let diag_slot = upper.next().expect("diagonal always present");
            for slot in upper {
                let j = self.structure.col_of_slot(slot);
                let v = self.values[slot];
                for c in 0..n_rhs {
                    x[c * n + i] -= v * x[c * n + j];
                }
            }
            let pivot = self.values[diag_slot];
            if !pivot.is_finite() || pivot.abs() < SINGULAR_TOL {
                return Err(LuError::SingularPivot {
                    index: i,
                    value: pivot,
                });
            }
            for c in 0..n_rhs {
                x[c * n + i] /= pivot;
            }
        }
        Ok(())
    }

    /// The lower factor `L` (with its unit diagonal) as a CSR matrix.
    pub fn l_matrix(&self) -> CsrMatrix {
        let n = self.n();
        let mut coo = CooMatrix::with_capacity(n, n, self.nnz());
        for i in 0..n {
            for slot in self.structure.lower_row_slots(i) {
                let j = self.structure.col_of_slot(slot);
                let v = self.values[slot];
                if v != 0.0 {
                    coo.push(i, j, v).expect("in bounds");
                }
            }
            coo.push(i, i, 1.0).expect("in bounds");
        }
        CsrMatrix::from_coo(&coo)
    }

    /// The upper factor `U` as a CSR matrix.
    pub fn u_matrix(&self) -> CsrMatrix {
        let n = self.n();
        let mut coo = CooMatrix::with_capacity(n, n, self.nnz());
        for i in 0..n {
            for slot in self.structure.upper_row_slots(i) {
                let j = self.structure.col_of_slot(slot);
                let v = self.values[slot];
                if v != 0.0 || j == i {
                    coo.push(i, j, v).expect("in bounds");
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Recomputes `L·U`, which should reproduce the factorized matrix.  Used
    /// by tests and by the verification examples.
    pub fn reconstruct(&self) -> CsrMatrix {
        let n = self.n();
        let u = self.u_matrix();
        let mut coo = CooMatrix::with_capacity(n, n, self.nnz() * 4);
        for i in 0..n {
            // Row i of L (including implicit diagonal) times U.
            let mut l_entries: Vec<(usize, f64)> = self
                .structure
                .lower_row_slots(i)
                .filter_map(|slot| {
                    let v = self.values[slot];
                    (v != 0.0).then(|| (self.structure.col_of_slot(slot), v))
                })
                .collect();
            l_entries.push((i, 1.0));
            for (k, lv) in l_entries {
                let (cols, vals) = u.row(k);
                for (&j, &uv) in cols.iter().zip(vals.iter()) {
                    coo.push(i, j, lv * uv).expect("in bounds");
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }
}

/// Convenience: factorizes a matrix over a structure built from its own
/// symbolic sparsity pattern (the per-matrix workflow of BF).
pub fn factorize_fresh(a: &CsrMatrix) -> LuResult<LuFactors> {
    let structure = LuStructure::from_pattern(&a.pattern())?.into_shared();
    LuFactors::factorize(structure, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_sparse::{CooMatrix, DenseMatrix};

    fn sample_matrix() -> CsrMatrix {
        // Diagonally dominant, with some sparsity and a fill-in-producing
        // pattern.
        let mut coo = CooMatrix::new(4, 4);
        let entries = [
            (0, 0, 4.0),
            (0, 2, 1.0),
            (1, 0, -1.0),
            (1, 1, 5.0),
            (2, 1, -2.0),
            (2, 2, 6.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (3, 3, 3.0),
        ];
        for &(i, j, v) in &entries {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn factorization_reconstructs_matrix() {
        let a = sample_matrix();
        let f = factorize_fresh(&a).unwrap();
        let back = f.reconstruct();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn factorization_matches_dense_oracle() {
        let a = sample_matrix();
        let f = factorize_fresh(&a).unwrap();
        let (dl, du) = a.to_dense().lu_no_pivoting().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((f.l(i, j) - dl.get(i, j)).abs() < 1e-12, "L({i},{j})");
                assert!((f.u(i, j) - du.get(i, j)).abs() < 1e-12, "U({i},{j})");
            }
        }
    }

    #[test]
    fn solve_matches_dense_solution() {
        let a = sample_matrix();
        let f = factorize_fresh(&a).unwrap();
        let b = vec![1.0, 2.0, -1.0, 0.5];
        let x = f.solve(&b).unwrap();
        let x_dense = a.to_dense().solve_gaussian(&b).unwrap();
        for (u, v) in x.iter().zip(x_dense.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
        // And A x = b indeed.
        let ax = a.mul_vec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn l_and_u_are_triangular() {
        let f = factorize_fresh(&sample_matrix()).unwrap();
        let l = f.l_matrix();
        let u = f.u_matrix();
        for (i, j, _) in l.iter() {
            assert!(i >= j);
        }
        for (i, j, _) in u.iter() {
            assert!(j >= i);
        }
        for i in 0..4 {
            assert_eq!(l.get(i, i), 1.0);
        }
    }

    #[test]
    fn universal_structure_accepts_sub_pattern_matrices() {
        // A structure built for a superset pattern factorizes a matrix whose
        // pattern is a subset (this is the USSP mechanism).
        let a = sample_matrix();
        let mut bigger = a.pattern();
        bigger.insert(3, 1);
        bigger.insert(0, 3);
        let structure = LuStructure::from_pattern(&bigger).unwrap().into_shared();
        let f = LuFactors::factorize(structure, &a).unwrap();
        assert!(f.reconstruct().max_abs_diff(&a).unwrap() < 1e-12);
        assert!(f.nnz() >= factorize_fresh(&a).unwrap().nnz());
        assert!(f.numeric_nnz() <= f.nnz());
    }

    #[test]
    fn entry_outside_structure_is_rejected() {
        let a = sample_matrix();
        // Structure built from a *smaller* pattern must reject the matrix.
        let small = CsrMatrix::identity(4).pattern();
        let structure = LuStructure::from_pattern(&small).unwrap().into_shared();
        let err = LuFactors::factorize(structure, &a).unwrap_err();
        assert!(matches!(err, LuError::EntryOutsideStructure { .. }));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = CsrMatrix::from_coo(&coo);
        let err = factorize_fresh(&a).unwrap_err();
        assert!(matches!(err, LuError::SingularPivot { index: 1, .. }));
    }

    #[test]
    fn dimension_checks() {
        let a = sample_matrix();
        let structure = LuStructure::from_pattern(&CsrMatrix::identity(3).pattern())
            .unwrap()
            .into_shared();
        assert!(matches!(
            LuFactors::factorize(structure, &a).unwrap_err(),
            LuError::DimensionMismatch { .. }
        ));
        let f = factorize_fresh(&a).unwrap();
        assert!(matches!(
            f.solve(&[1.0, 2.0]).unwrap_err(),
            LuError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn solve_identity_is_identity() {
        let a = CsrMatrix::identity(5);
        let f = factorize_fresh(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(f.solve(&b).unwrap(), b);
        assert_eq!(f.numeric_nnz(), 5);
    }

    #[test]
    fn larger_random_like_matrix_roundtrip() {
        // A 20x20 diagonally dominant banded matrix.
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 10.0 + i as f64).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -2.0).unwrap();
            }
            if i + 5 < n {
                coo.push(i, i + 5, -0.5).unwrap();
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let f = factorize_fresh(&a).unwrap();
        assert!(f.reconstruct().max_abs_diff(&a).unwrap() < 1e-10);
        let d = DenseMatrix::from_rows(
            (0..n)
                .map(|i| (0..n).map(|j| a.get(i, j)).collect())
                .collect(),
        );
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&b).unwrap();
        let xd = d.solve_gaussian(&b).unwrap();
        for (u, v) in x.iter().zip(xd.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}
