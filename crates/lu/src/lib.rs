//! # clude-lu
//!
//! The sparse LU engine of the CLUDE (EDBT 2014) reproduction.
//!
//! The paper decomposes every matrix of an evolving matrix sequence into
//! triangular factors so that arbitrarily many linear-system queries can be
//! answered by cheap substitutions.  This crate provides every piece of that
//! pipeline for a single matrix (the sequence-level orchestration lives in the
//! `clude` crate):
//!
//! * [`symbolic`] — the SD-phase: fill-in pattern `fp(A)` and symbolic
//!   sparsity pattern `s̃p(A)` (Eq. 2–3 of the paper).
//! * [`ordering`] — fill-reducing Markowitz / minimum-degree orderings and
//!   the `|s̃p(A^O)|` accounting used by the quality-loss metric.
//! * [`amd`] — the quotient-graph minimum-degree ordering over `A + Aᵀ`
//!   (the SuiteSparse-AMD idea), selected against Markowitz per shard by
//!   predicted symbolic size.
//! * [`refactor`] — pattern-frozen refactorization: redo the numerics down
//!   the existing symbolic pattern in one pass (the KLU `refactor` idea),
//!   the bulk alternative to per-entry Bennett sweeps for value-only deltas.
//! * [`structure`] — static slot layouts (`LuStructure`), including the
//!   universal structures CLUDE shares across a cluster.
//! * [`factors`] — the ND-phase: numeric factorization over a static
//!   structure, plus triangular solves.
//! * [`dynamic`] — adjacency-list factors with insertion-on-demand, the
//!   storage model of the straightforward incremental algorithms.
//! * [`bennett`] — Bennett's incremental factor update, generic over the two
//!   storage back-ends, plus sparse-delta application.
//! * [`solve`] — answering queries on the *original* matrix through the
//!   reordered factors.
//! * [`lowrank`] — dense kernels of the Woodbury correction the engine's
//!   sharded solves cache per snapshot (small partial-pivot [`DenseLu`] and
//!   the frozen [`LowRankCorrection`]).

#![forbid(unsafe_code)]
// Indexed loops mirror the paper's matrix notation throughout this crate.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod amd;
pub mod bennett;
pub mod dynamic;
pub mod error;
pub mod factors;
pub mod lowrank;
pub mod ordering;
pub mod refactor;
pub mod solve;
pub mod structure;
pub mod symbolic;

pub use amd::amd_ordering;

pub use bennett::{
    apply_delta, apply_delta_with, rank_one_update, rank_one_update_with, BennettStats,
    BennettWorkspace, LuStorage, ShardWorkspaces,
};
pub use dynamic::DynamicLuFactors;
pub use error::{LuError, LuResult};
pub use factors::{factorize_fresh, LuFactors};
pub use lowrank::{CorrectionScratch, DenseLu, LowRankCorrection};
pub use ordering::{
    markowitz_ordering, natural_order_symbolic_size, reorder_pattern, symbolic_size_under,
    OrderingResult,
};
pub use refactor::{refactor_frozen, RefactorStats, RefactorWorkspace, PIVOT_DEGRADE_TOL};
pub use solve::{
    solve_original, solve_original_into, solve_original_many_into, PanelScratch, SolveScratch,
    TriangularSolve,
};
pub use structure::LuStructure;
pub use symbolic::{fill_in_pattern, symbolic_decomposition, symbolic_size, SymbolicDecomposition};
