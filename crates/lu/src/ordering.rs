//! Fill-reducing orderings.
//!
//! The paper uses the Markowitz criterion \[20\] as its reference ordering: at
//! every elimination step, pick the pivot minimising `(r − 1)(c − 1)`, where
//! `r` and `c` are the pivot row's and column's non-zero counts in the active
//! submatrix.
//!
//! This implementation restricts pivots to the *diagonal* of the active
//! submatrix, i.e. it produces a symmetric ordering `P A Pᵀ` (Tinney scheme
//! 2).  Two reasons, documented in DESIGN.md:
//!
//! 1. The matrices the paper derives from graphs (`A = I − dW`, shifted
//!    Laplacians) are column diagonally dominant; a symmetric permutation
//!    preserves that dominance, so the subsequent LU factorization (and the
//!    Bennett updates) are numerically safe *without* pivoting — which is
//!    what the paper's pipeline assumes.
//! 2. For symmetric matrices the criterion degenerates to minimum degree,
//!    exactly the "fast Markowitz for symmetric matrices" the paper's
//!    LUDEM-QC section relies on; the same code therefore serves both the
//!    general and the symmetric case.
//!
//! The routine also returns `|s̃p(A^O)|` — the size of the symbolic pattern
//! that the chosen ordering induces — because both the quality-loss metric
//! (Definition 4) and β-clustering need that number and it falls out of the
//! elimination for free.

use clude_sparse::{Ordering, Permutation, SparsityPattern};
use std::collections::BTreeSet;

/// A fill-reducing ordering together with the symbolic-pattern size it
/// induces on the matrix it was computed from.
#[derive(Debug, Clone)]
pub struct OrderingResult {
    /// The ordering `O = (P, Q)` (symmetric: `Q = Pᵀ` in matrix terms).
    pub ordering: Ordering,
    /// `|s̃p(A^O)|`: the number of non-zeros (original + fill) the LU factors
    /// of the reordered matrix will hold.
    pub symbolic_size: usize,
}

/// Computes the Markowitz (diagonal-pivot) ordering of a square pattern.
///
/// # Panics
/// Panics if the pattern is not square.
pub fn markowitz_ordering(sp: &SparsityPattern) -> OrderingResult {
    assert_eq!(sp.n_rows(), sp.n_cols(), "ordering needs a square pattern");
    let n = sp.n_rows();
    // Off-diagonal structure of the progressively filled matrix.
    let mut rows: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut cols: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (i, j) in sp.iter() {
        if i != j {
            rows[i].insert(j);
            cols[j].insert(i);
        }
    }
    let mut active = vec![true; n];
    // Active off-diagonal counts per row / column.
    let mut row_count: Vec<usize> = rows.iter().map(BTreeSet::len).collect();
    let mut col_count: Vec<usize> = cols.iter().map(BTreeSet::len).collect();

    let mut order = Vec::with_capacity(n);
    let mut symbolic_size = 0usize;

    for _ in 0..n {
        // Select the active diagonal pivot with the minimal Markowitz cost.
        let mut best: Option<(usize, usize)> = None; // (cost, node)
        for v in 0..n {
            if !active[v] {
                continue;
            }
            let cost = row_count[v] * col_count[v];
            match best {
                Some((c, _)) if c <= cost => {}
                _ => best = Some((cost, v)),
            }
        }
        let (_, v) = best.expect("there is always an active node left");

        // Contribution of this pivot to |s̃p(A^O)|: its U row, its L column
        // and the diagonal.
        symbolic_size += row_count[v] + col_count[v] + 1;
        order.push(v);
        active[v] = false;

        let row_v: Vec<usize> = rows[v].iter().copied().filter(|&j| active[j]).collect();
        let col_v: Vec<usize> = cols[v].iter().copied().filter(|&i| active[i]).collect();

        // The pivot leaves the active submatrix: its neighbours lose one.
        for &j in &row_v {
            col_count[j] -= 1;
        }
        for &i in &col_v {
            row_count[i] -= 1;
        }

        // Elimination fill: every (i, j) with i in col(v), j in row(v).
        for &i in &col_v {
            for &j in &row_v {
                if i != j && rows[i].insert(j) {
                    cols[j].insert(i);
                    row_count[i] += 1;
                    col_count[j] += 1;
                }
            }
        }
    }

    let perm = Permutation::from_new_to_old(order).expect("each node eliminated exactly once");
    OrderingResult {
        ordering: Ordering::symmetric(perm),
        symbolic_size,
    }
}

/// The symbolic-pattern size induced by the *identity* ordering (no
/// reordering), i.e. `|s̃p(A)|`.  Used to express how much a fill-reducing
/// ordering saves.
pub fn natural_order_symbolic_size(sp: &SparsityPattern) -> usize {
    crate::symbolic::symbolic_size(sp)
}

/// The symbolic-pattern size induced by an arbitrary given ordering, i.e.
/// `|s̃p(A^O)|`.  This is what Definition 4's quality-loss compares against
/// the Markowitz reference.
pub fn symbolic_size_under(sp: &SparsityPattern, ordering: &Ordering) -> usize {
    let reordered = reorder_pattern(sp, ordering);
    crate::symbolic::symbolic_size(&reordered)
}

/// Reorders a pattern by an ordering: position `(i, j)` of the result is
/// position `(P(i), Q(j))` of the input.
pub fn reorder_pattern(sp: &SparsityPattern, ordering: &Ordering) -> SparsityPattern {
    let n = sp.n_rows();
    assert_eq!(ordering.row().len(), n, "ordering length mismatch");
    assert_eq!(
        ordering.col().len(),
        sp.n_cols(),
        "ordering length mismatch"
    );
    let col_old_to_new = ordering.col().old_to_new();
    let mut rows: Vec<Vec<usize>> = Vec::with_capacity(n);
    for new_i in 0..n {
        let old_i = ordering.row().new_to_old(new_i);
        let mut cols: Vec<usize> = sp.row(old_i).iter().map(|&j| col_old_to_new[j]).collect();
        cols.sort_unstable();
        rows.push(cols);
    }
    SparsityPattern::from_sorted_rows(sp.n_cols(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::symbolic_decomposition;
    use clude_sparse::SparsityPattern;

    fn arrowhead(n: usize) -> SparsityPattern {
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i));
            if i > 0 {
                entries.push((0, i));
                entries.push((i, 0));
            }
        }
        SparsityPattern::from_entries(n, n, entries).unwrap()
    }

    #[test]
    fn markowitz_avoids_arrowhead_fill() {
        let n = 8;
        let sp = arrowhead(n);
        // Natural order fills everything...
        assert_eq!(natural_order_symbolic_size(&sp), n * n);
        // ...Markowitz defers the hub to the end and produces no fill.
        let result = markowitz_ordering(&sp);
        assert_eq!(result.symbolic_size, 3 * n - 2);
        // The hub (node 0) must be deferred to the very end (ties may let a
        // final leaf swap with it, so allow the last two positions).
        let hub_position = result.ordering.row().old_to_new()[0];
        assert!(
            hub_position >= n - 2,
            "hub eliminated too early: {hub_position}"
        );
    }

    #[test]
    fn reported_size_matches_symbolic_decomposition_of_reordered_pattern() {
        let sp = SparsityPattern::from_entries(
            6,
            6,
            vec![
                (0, 0),
                (1, 1),
                (2, 2),
                (3, 3),
                (4, 4),
                (5, 5),
                (0, 3),
                (3, 0),
                (1, 4),
                (4, 1),
                (2, 3),
                (3, 2),
                (0, 5),
                (5, 0),
                (4, 5),
                (5, 4),
            ],
        )
        .unwrap();
        let result = markowitz_ordering(&sp);
        let reordered = reorder_pattern(&sp, &result.ordering);
        let direct = symbolic_decomposition(&reordered);
        assert_eq!(result.symbolic_size, direct.size());
    }

    #[test]
    fn markowitz_never_worse_than_reported_by_symbolic_size_under() {
        let sp = arrowhead(6);
        let result = markowitz_ordering(&sp);
        assert_eq!(
            symbolic_size_under(&sp, &result.ordering),
            result.symbolic_size
        );
    }

    #[test]
    fn identity_ordering_keeps_pattern() {
        let sp = arrowhead(4);
        let id = Ordering::identity(4);
        let reordered = reorder_pattern(&sp, &id);
        assert_eq!(reordered, sp);
        assert_eq!(
            symbolic_size_under(&sp, &id),
            natural_order_symbolic_size(&sp)
        );
    }

    #[test]
    fn ordering_is_symmetric_permutation() {
        let sp = arrowhead(5);
        let result = markowitz_ordering(&sp);
        assert!(result.ordering.is_symmetric());
    }

    #[test]
    fn diagonal_only_pattern_gets_identity_cost() {
        let sp = SparsityPattern::identity(4);
        let result = markowitz_ordering(&sp);
        assert_eq!(result.symbolic_size, 4);
    }

    #[test]
    fn reorder_pattern_moves_entries() {
        let sp = SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 1), (2, 2), (0, 2)]).unwrap();
        let perm = clude_sparse::Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let o = Ordering::symmetric(perm);
        let r = reorder_pattern(&sp, &o);
        // (0,2) old becomes (new of 0 = 2, new of 2 = 0) = (2,0).
        assert!(r.contains(2, 0));
        assert!(!r.contains(0, 2));
        assert_eq!(r.nnz(), sp.nnz());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        markowitz_ordering(&SparsityPattern::empty(2, 3));
    }
}
