//! Low-rank (Woodbury) correction kernels.
//!
//! The sharded engine splits a measure matrix as `A = B + C` with
//! `B = blockdiag(A_ss)` directly solvable through the per-shard factors and
//! `C` the sparse cross-shard coupling.  Writing the captured part of the
//! coupling as a rank-`k` product `U·Vᵀ` (one rank-one term per captured
//! column: `U` holds the column values, `V` the corresponding unit vectors),
//! the Woodbury identity turns solves with `M = B + U·Vᵀ` into block solves
//! plus one *small* dense system:
//!
//! ```text
//!   M⁻¹ r = w − Z · S⁻¹ · (Vᵀ w),   w = B⁻¹ r,  Z = B⁻¹ U,  S = I_k + Vᵀ Z
//! ```
//!
//! `Z` and the factorization of the `k×k` Schur complement `S` depend only on
//! the frozen factors and coupling, so they are computed once per published
//! snapshot and cached; each query then pays one block-solve pass plus a
//! back/forward substitution on `S` — no fixed-point sweeps at all for the
//! captured columns.  This module holds the dense kernels ([`DenseLu`]) and
//! the frozen correction ([`LowRankCorrection`]); assembling `Z` from the
//! shard factors is the engine's job.

use crate::error::{LuError, LuResult};
use clude_sparse::DenseMatrix;

/// A dense LU factorization with partial pivoting of a small `k×k` matrix
/// (the Schur complement of a low-rank correction).
///
/// Factored once at snapshot-freeze time, solved per query through reused
/// buffers — the dense counterpart of the sparse factors' `solve_into`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLu {
    n: usize,
    /// Row-major packed factors: unit-lower multipliers below the diagonal,
    /// the upper factor on and above it.
    lu: Vec<f64>,
    /// `perm[i]` is the original row sitting in pivot position `i`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factorizes a square dense matrix with partial (row) pivoting.
    pub fn factorize(a: &DenseMatrix) -> LuResult<Self> {
        let n = a.n_rows();
        if a.n_cols() != n {
            return Err(LuError::NotSquare {
                n_rows: n,
                n_cols: a.n_cols(),
            });
        }
        let mut lu = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                lu[i * n + j] = a.get(i, j);
            }
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: bring the largest remaining |entry| of
            // column k to the pivot position.
            let mut best = k;
            for i in k + 1..n {
                if lu[i * n + k].abs() > lu[best * n + k].abs() {
                    best = i;
                }
            }
            if best != k {
                for j in 0..n {
                    lu.swap(k * n + j, best * n + j);
                }
                perm.swap(k, best);
            }
            let pivot = lu[k * n + k];
            if pivot == 0.0 || !pivot.is_finite() {
                return Err(LuError::SingularPivot {
                    index: k,
                    value: pivot,
                });
            }
            for i in k + 1..n {
                let m = lu[i * n + k] / pivot;
                lu[i * n + k] = m;
                if m != 0.0 {
                    for j in k + 1..n {
                        lu[i * n + j] -= m * lu[k * n + j];
                    }
                }
            }
        }
        Ok(DenseLu { n, lu, perm })
    }

    /// Order of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`, substituting into `x` (capacity reused, previous
    /// content discarded).
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> LuResult<()> {
        let n = self.n;
        if b.len() != n {
            return Err(LuError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        // Forward substitution with the unit-lower factor.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Backward substitution with the upper factor.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        Ok(())
    }

    /// Allocating convenience wrapper over [`DenseLu::solve_into`].
    pub fn solve(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }
}

/// Reused buffers of [`LowRankCorrection::apply_into`]: the picked entries
/// `Vᵀ w` and the Schur solution `S⁻¹ (Vᵀ w)`.  One correction application
/// allocates nothing once both have grown to rank `k`.
#[derive(Debug, Clone, Default)]
pub struct CorrectionScratch {
    picked: Vec<f64>,
    solved: Vec<f64>,
}

/// The frozen Woodbury correction of a block solve: captured column indices,
/// the pre-solved columns `Z = B⁻¹ U`, and the factored Schur complement
/// `S = I_k + Vᵀ Z`.
///
/// Built once when a snapshot freezes (the engine supplies `Z` by running one
/// block solve per captured column) and shared by every query against that
/// snapshot; [`LowRankCorrection::apply_into`] then turns a block solution
/// `w = B⁻¹ r` into the exact solution of `(B + U·Vᵀ) y = r`.
#[derive(Debug, Clone, PartialEq)]
pub struct LowRankCorrection {
    n: usize,
    cols: Vec<usize>,
    /// `Z = B⁻¹ U`, column-major `n×k` (column `i` is `B⁻¹` applied to
    /// captured column `cols[i]`).
    z: Vec<f64>,
    schur: DenseLu,
}

impl LowRankCorrection {
    /// Builds the correction from the captured (global) column indices and
    /// the pre-solved columns `Z = B⁻¹ U` in column-major layout: assembles
    /// `S = I_k + Vᵀ Z` (row `i` of `Vᵀ Z` is row `cols[i]` of `Z`) and
    /// factorizes it.
    ///
    /// Fails with [`LuError::SingularPivot`] when `S` is singular (cannot
    /// happen for the engine's M-matrices, where `B + U·Vᵀ` stays an
    /// M-matrix) and with [`LuError::DimensionMismatch`] when `z` is not
    /// `n × cols.len()`.
    pub fn new(n: usize, cols: Vec<usize>, z: Vec<f64>) -> LuResult<Self> {
        let k = cols.len();
        if z.len() != n * k {
            return Err(LuError::DimensionMismatch {
                expected: n * k,
                actual: z.len(),
            });
        }
        let mut s = DenseMatrix::identity(k);
        for (i, &c) in cols.iter().enumerate() {
            for l in 0..k {
                s.add_to(i, l, z[l * n + c]);
            }
        }
        let schur = DenseLu::factorize(&s)?;
        Ok(LowRankCorrection { n, cols, z, schur })
    }

    /// Rank `k` of the correction (number of captured columns).
    pub fn rank(&self) -> usize {
        self.cols.len()
    }

    /// The captured (global) column indices, in capture order.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Order `n` of the corrected system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Turns a block solution `w = B⁻¹ r` into the solution of
    /// `(B + U·Vᵀ) y = r` in place: `w ← w − Z · S⁻¹ · (Vᵀ w)`.
    pub fn apply_into(&self, w: &mut [f64], scratch: &mut CorrectionScratch) -> LuResult<()> {
        if w.len() != self.n {
            return Err(LuError::DimensionMismatch {
                expected: self.n,
                actual: w.len(),
            });
        }
        if self.cols.is_empty() {
            return Ok(());
        }
        scratch.picked.clear();
        scratch.picked.extend(self.cols.iter().map(|&c| w[c]));
        self.schur
            .solve_into(&scratch.picked, &mut scratch.solved)?;
        for (i, &t) in scratch.solved.iter().enumerate() {
            if t != 0.0 {
                let col = &self.z[i * self.n..(i + 1) * self.n];
                for (wg, &zg) in w.iter_mut().zip(col.iter()) {
                    *wg -= zg * t;
                }
            }
        }
        Ok(())
    }

    /// Rough resident size in bytes (the dense `Z` dominates), for the
    /// engine's snapshot-ring memory accounting.
    pub fn approx_bytes(&self) -> usize {
        (self.z.len() + self.schur.lu.len()) * std::mem::size_of::<f64>()
            + (self.cols.len() + self.schur.perm.len()) * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: Vec<Vec<f64>>) -> DenseMatrix {
        DenseMatrix::from_rows(rows)
    }

    #[test]
    fn dense_lu_matches_gaussian_elimination() {
        let a = dense(vec![
            vec![0.0, 2.0, 1.0],
            vec![4.0, -1.0, 0.5],
            vec![1.0, 3.0, -2.0],
        ]);
        let lu = DenseLu::factorize(&a).unwrap();
        assert_eq!(lu.n(), 3);
        let b = vec![1.0, -2.0, 0.5];
        let x = lu.solve(&b).unwrap();
        let expected = a.solve_gaussian(&b).unwrap();
        for (u, v) in x.iter().zip(expected.iter()) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
        // Reused (over-sized) output buffer, second right-hand side.
        let mut out = vec![9.0; 7];
        lu.solve_into(&[0.0, 1.0, 0.0], &mut out).unwrap();
        let ax = a.mul_vec(&out).unwrap();
        assert!((ax[1] - 1.0).abs() < 1e-12);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn dense_lu_rejects_bad_inputs() {
        let rect = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            DenseLu::factorize(&rect),
            Err(LuError::NotSquare {
                n_rows: 2,
                n_cols: 3
            })
        ));
        let singular = dense(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            DenseLu::factorize(&singular),
            Err(LuError::SingularPivot { .. })
        ));
        let lu = DenseLu::factorize(&DenseMatrix::identity(2)).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(LuError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn woodbury_correction_solves_the_augmented_system() {
        // B diagonal (trivially solvable), U·Vᵀ adds two sparse columns.
        let n = 5;
        let b_diag = [2.0, 4.0, 5.0, 2.5, 8.0];
        let cols = vec![1usize, 3];
        // Column 1 gains entries at rows 0 and 4, column 3 at row 2.
        let u_cols: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0), (4, -2.0)], vec![(2, 0.5)]];
        // Z = B⁻¹ U, column-major.
        let mut z = vec![0.0; n * cols.len()];
        for (i, col) in u_cols.iter().enumerate() {
            for &(r, v) in col {
                z[i * n + r] = v / b_diag[r];
            }
        }
        let correction = LowRankCorrection::new(n, cols.clone(), z).unwrap();
        assert_eq!(correction.rank(), 2);
        assert_eq!(correction.cols(), &[1, 3]);
        assert_eq!(correction.n(), 5);
        assert!(correction.approx_bytes() > 0);

        // Dense oracle: M = B + U·Vᵀ.
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, b_diag[i]);
        }
        for (i, col) in u_cols.iter().enumerate() {
            for &(r, v) in col {
                m.add_to(r, [1, 3][i], v);
            }
        }
        let rhs = vec![1.0, -0.5, 2.0, 0.25, 3.0];
        let expected = m.solve_gaussian(&rhs).unwrap();

        let mut w: Vec<f64> = rhs.iter().zip(b_diag.iter()).map(|(r, d)| r / d).collect();
        let mut scratch = CorrectionScratch::default();
        correction.apply_into(&mut w, &mut scratch).unwrap();
        for (got, want) in w.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        // Scratch is reusable: a second application from the same block
        // solution reproduces the answer bit-identically.
        let mut w2: Vec<f64> = rhs.iter().zip(b_diag.iter()).map(|(r, d)| r / d).collect();
        correction.apply_into(&mut w2, &mut scratch).unwrap();
        assert_eq!(w, w2);
    }

    #[test]
    fn empty_correction_is_identity() {
        let correction = LowRankCorrection::new(3, vec![], vec![]).unwrap();
        assert_eq!(correction.rank(), 0);
        let mut w = vec![1.0, 2.0, 3.0];
        correction
            .apply_into(&mut w, &mut CorrectionScratch::default())
            .unwrap();
        assert_eq!(w, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn correction_validates_shapes() {
        assert!(matches!(
            LowRankCorrection::new(4, vec![0], vec![0.0; 3]),
            Err(LuError::DimensionMismatch {
                expected: 4,
                actual: 3
            })
        ));
        let ok = LowRankCorrection::new(2, vec![0], vec![0.5, 0.0]).unwrap();
        let mut short = vec![1.0];
        assert!(ok
            .apply_into(&mut short, &mut CorrectionScratch::default())
            .is_err());
    }
}
