//! Pattern-frozen refactorization (the KLU `refactor` idea).
//!
//! When a delta batch changes only edge *values* — the steady-state case on
//! real evolving-graph workloads — the symbolic pattern of the factors is
//! still valid: the new matrix's fill is covered by the slots the factors
//! already hold.  Redoing the numerics down that frozen pattern in one
//! row-wise pass is then much cheaper than replaying the batch as per-entry
//! Bennett rank-one sweeps, because the pass costs one factorization's worth
//! of flops *total* instead of one partial sweep *per changed entry*, and it
//! performs no structural probes or insertions at all.
//!
//! [`refactor_frozen`] is that pass.  It consumes the updated matrix (in
//! factor coordinates, i.e. already reordered) and rewrites the values of a
//! [`DynamicLuFactors`] in place through the mutable-row view — the adjacency
//! lists themselves are never touched.  Three things abort the pass, and each
//! maps onto a distinct engine fallback:
//!
//! * an input entry outside the stored pattern
//!   ([`LuError::EntryOutsideStructure`]) — the batch was mis-classified as
//!   value-only; the caller should fall back to Bennett sweeps or refresh;
//! * elimination fill landing outside the stored pattern above
//!   [`FILL_DROP_TOL`] ([`LuError::FillOutsideStructure`]) — the frozen
//!   pattern no longer covers this matrix (possible after stored-zero slots
//!   were dropped by earlier sweeps); refresh re-derives the pattern;
//! * a pivot collapsing below [`SINGULAR_TOL`] or degrading past
//!   [`PIVOT_DEGRADE_TOL`] relative to its row
//!   ([`LuError::SingularPivot`]) — numerics demand a fresh factorization
//!   with a new ordering.
//!
//! On error the factors hold partially rewritten values (the structure is
//! intact but rows before the failure point already carry new numbers), so
//! the caller **must** rebuild them via a full refresh — which is exactly
//! what the engine's fallback path does.

// lint: hot-path

use crate::dynamic::DynamicLuFactors;
use crate::error::{LuError, LuResult};
use crate::factors::SINGULAR_TOL;
use clude_sparse::CsrMatrix;

/// Magnitude below which elimination fill landing outside the frozen pattern
/// is dropped as numerical noise (mirrors the Bennett sweep's convention).
pub use crate::bennett::FILL_DROP_TOL;

/// A refactor pivot smaller than this fraction of its row's largest entry is
/// treated as degraded: without pivoting, continuing would amplify rounding
/// error, so the pass aborts and the caller refreshes with a new ordering.
pub const PIVOT_DEGRADE_TOL: f64 = 1e-12;

/// Work counters for one frozen-pattern refactorization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefactorStats {
    /// Rows whose values were recomputed (the matrix order on success).
    pub rows_refactored: usize,
    /// Factor slots rewritten.
    pub entries_written: usize,
    /// Row-elimination steps performed (one per nonzero `L` coefficient).
    pub eliminations: usize,
}

/// Reusable scratch for [`refactor_frozen`]: one dense epoch-stamped row
/// workspace plus the pending-pivot queue, retained across calls so the
/// steady-state pass is allocation-free (the same discipline as
/// [`crate::bennett::BennettWorkspace`]).
#[derive(Debug, Clone, Default)]
pub struct RefactorWorkspace {
    epoch: u64,
    work: Vec<f64>,
    stamp: Vec<u64>,
    /// Columns touched in the current row, unsorted.
    touched: Vec<usize>,
    /// Sorted queue of lower-triangular pivots still to eliminate against;
    /// `pending[..pending_pos]` is already processed.
    pending: Vec<usize>,
    pending_pos: usize,
}

impl RefactorWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        RefactorWorkspace::default()
    }

    /// Creates a workspace with dense scratch pre-sized for order `n`.
    pub fn with_order(n: usize) -> Self {
        let mut ws = RefactorWorkspace::new();
        ws.grow(n);
        ws
    }

    /// The order the dense scratch currently covers.
    pub fn capacity(&self) -> usize {
        self.work.len()
    }

    fn grow(&mut self, n: usize) {
        if self.work.len() < n {
            self.work.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
    }

    /// Readies the workspace for one row of order-`n` elimination.
    fn begin_row(&mut self, n: usize) {
        self.grow(n);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
        self.pending.clear();
        self.pending_pos = 0;
    }

    #[inline]
    fn get(&self, j: usize) -> f64 {
        if self.stamp[j] == self.epoch {
            self.work[j]
        } else {
            0.0
        }
    }

    /// Marks `j` touched (zero-initialised on first touch); returns whether
    /// it was newly touched.
    #[inline]
    fn touch(&mut self, j: usize) -> bool {
        if self.stamp[j] != self.epoch {
            self.stamp[j] = self.epoch;
            self.work[j] = 0.0;
            self.touched.push(j);
            true
        } else {
            false
        }
    }

    #[inline]
    fn pending_pop(&mut self) -> Option<usize> {
        let k = *self.pending.get(self.pending_pos)?;
        self.pending_pos += 1;
        Some(k)
    }

    /// Queues pivot `k`; sweep insertions always satisfy `k >` the last
    /// popped pivot, so only the unprocessed tail is searched.
    fn pending_push(&mut self, k: usize) {
        debug_assert!(self.pending_pos == 0 || k > self.pending[self.pending_pos - 1]);
        if let Err(pos) = self.pending[self.pending_pos..].binary_search(&k) {
            self.pending.insert(self.pending_pos + pos, k);
        }
    }
}

/// Recomputes the values of `factors` so they factorize `a`, without changing
/// the stored pattern.  `a` must be given in the factors' own (reordered)
/// coordinates.  See the module docs for the failure contract.
pub fn refactor_frozen(
    factors: &mut DynamicLuFactors,
    a: &CsrMatrix,
    ws: &mut RefactorWorkspace,
) -> LuResult<RefactorStats> {
    let n = factors.n();
    if a.n_rows() != n || a.n_cols() != n {
        return Err(LuError::DimensionMismatch {
            expected: n,
            actual: a.n_rows(),
        });
    }
    let mut stats = RefactorStats::default();
    for i in 0..n {
        ws.begin_row(n);
        // Scatter row i of A.  Every input entry must sit on a stored slot —
        // anything else means the batch was not value-only after all.
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if !factors.has_entry(i, j) {
                return Err(LuError::EntryOutsideStructure { row: i, col: j });
            }
            ws.touch(j);
            ws.work[j] = v;
            if j < i {
                ws.pending_push(j);
            }
        }
        // Eliminate against the already-recomputed rows of U, in ascending
        // pivot order; fill spawned left of the diagonal re-enters the queue.
        while let Some(k) = ws.pending_pop() {
            let (kcols, kvals) = factors.row_entries(k);
            let diag_pos = kcols.partition_point(|&c| c < k);
            let ukk = if kcols.get(diag_pos) == Some(&k) {
                kvals[diag_pos]
            } else {
                0.0
            };
            if !ukk.is_finite() || ukk.abs() < SINGULAR_TOL {
                return Err(LuError::SingularPivot {
                    index: k,
                    value: ukk,
                });
            }
            let lik = ws.get(k) / ukk;
            ws.work[k] = lik;
            if lik == 0.0 {
                continue;
            }
            stats.eliminations += 1;
            for (&j, &ukj) in kcols[diag_pos + 1..].iter().zip(&kvals[diag_pos + 1..]) {
                if ukj == 0.0 {
                    continue;
                }
                if ws.touch(j) && j < i {
                    ws.pending_push(j);
                }
                ws.work[j] -= lik * ukj;
            }
        }
        // Pivot health: absolute floor plus relative degradation against the
        // largest magnitude the elimination produced in this row.
        let pivot = ws.get(i);
        let row_max = ws
            .touched
            .iter()
            .map(|&j| ws.work[j].abs())
            .fold(0.0f64, f64::max);
        if !pivot.is_finite()
            || pivot.abs() < SINGULAR_TOL
            || pivot.abs() < PIVOT_DEGRADE_TOL * row_max
        {
            return Err(LuError::SingularPivot {
                index: i,
                value: pivot,
            });
        }
        // Fill escaping the frozen pattern?  Tolerate noise, abort otherwise.
        let row_cols = factors.row_entries(i).0;
        for t in 0..ws.touched.len() {
            let j = ws.touched[t];
            let v = ws.work[j];
            if v != 0.0 && row_cols.binary_search(&j).is_err() && v.abs() > FILL_DROP_TOL {
                return Err(LuError::FillOutsideStructure {
                    row: i,
                    col: j,
                    magnitude: v.abs(),
                });
            }
            // Sub-tolerance fill outside the pattern is dropped, matching
            // the Bennett sweep.
        }
        // Gather: rewrite every stored slot of row i in place.  Slots the
        // elimination never reached are genuinely zero in the new factors
        // (stored zeros keep their node — the pattern is frozen).
        let epoch = ws.epoch;
        let (cols, vals_mut) = factors.row_entries_mut(i);
        for (pos, &j) in cols.iter().enumerate() {
            vals_mut[pos] = if ws.stamp[j] == epoch {
                ws.work[j]
            } else {
                0.0
            };
        }
        stats.entries_written += cols.len();
        stats.rows_refactored += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bennett::apply_delta_with;
    use crate::bennett::BennettWorkspace;
    use clude_sparse::CooMatrix;

    fn diag_dominant(n: usize, extra: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 8.0 + i as f64).unwrap();
        }
        for &(i, j, v) in extra {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    fn base_matrix() -> CsrMatrix {
        diag_dominant(
            5,
            &[
                (0, 2, 1.0),
                (1, 0, -1.5),
                (2, 1, 2.0),
                (3, 2, -0.5),
                (4, 0, 1.0),
                (2, 4, 0.5),
            ],
        )
    }

    /// Applies a value-only delta list to a matrix.
    fn perturbed(a: &CsrMatrix, delta: &[(usize, usize, f64, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(a.n_rows(), a.n_cols());
        for (i, j, v) in a.iter() {
            coo.push(i, j, v).unwrap();
        }
        for &(i, j, old, new) in delta {
            coo.push(i, j, new - old).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        let a = base_matrix();
        let mut factors = DynamicLuFactors::factorize(&a).unwrap();
        let delta = vec![
            (0usize, 2usize, 1.0f64, 1.4f64),
            (1, 0, -1.5, -0.9),
            (2, 4, 0.5, 0.1),
        ];
        let a_new = perturbed(&a, &delta);
        let mut ws = RefactorWorkspace::new();
        let stats = refactor_frozen(&mut factors, &a_new, &mut ws).unwrap();
        assert_eq!(stats.rows_refactored, 5);
        assert!(stats.entries_written >= factors.nnz());
        let fresh = DynamicLuFactors::factorize(&a_new).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!(
                    (factors.l(i, j) - fresh.l(i, j)).abs() < 1e-12,
                    "L({i},{j})"
                );
                assert!(
                    (factors.u(i, j) - fresh.u(i, j)).abs() < 1e-12,
                    "U({i},{j})"
                );
            }
        }
    }

    #[test]
    fn refactor_agrees_with_bennett_sweeps() {
        let a = base_matrix();
        let mut via_refactor = DynamicLuFactors::factorize(&a).unwrap();
        let mut via_bennett = via_refactor.clone();
        let delta = vec![
            (0usize, 0usize, 8.0f64, 9.5f64),
            (2, 1, 2.0, -1.0),
            (4, 0, 1.0, 0.25),
        ];
        let a_new = perturbed(&a, &delta);
        let mut rws = RefactorWorkspace::new();
        refactor_frozen(&mut via_refactor, &a_new, &mut rws).unwrap();
        let mut bws = BennettWorkspace::new();
        apply_delta_with(&mut via_bennett, &mut bws, &delta).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!(
                    (via_refactor.l(i, j) - via_bennett.l(i, j)).abs() < 1e-9,
                    "L({i},{j})"
                );
                assert!(
                    (via_refactor.u(i, j) - via_bennett.u(i, j)).abs() < 1e-9,
                    "U({i},{j})"
                );
            }
        }
    }

    #[test]
    fn zeroed_entry_keeps_the_frozen_slot() {
        // Removing an edge zeroes a matrix entry; the refactor keeps the slot
        // as a stored zero and the numerics match a fresh factorization.
        let a = base_matrix();
        let mut factors = DynamicLuFactors::factorize(&a).unwrap();
        let nnz_before = factors.nnz();
        let delta = vec![(2usize, 4usize, 0.5f64, 0.0f64)];
        let a_new = perturbed(&a, &delta);
        let mut ws = RefactorWorkspace::new();
        refactor_frozen(&mut factors, &a_new, &mut ws).unwrap();
        assert_eq!(factors.nnz(), nnz_before);
        let fresh = DynamicLuFactors::factorize(&a_new).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0, 0.25];
        let x0 = factors.solve(&b).unwrap();
        let x1 = fresh.solve(&b).unwrap();
        for (u, v) in x0.iter().zip(x1.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn entry_outside_pattern_is_rejected() {
        let a = base_matrix();
        let mut factors = DynamicLuFactors::factorize(&a).unwrap();
        // (3, 1) is neither a matrix entry nor fill of this pattern.
        assert!(!factors.has_entry(3, 1));
        let a_new = perturbed(&a, &[(3, 1, 0.0, 2.0)]);
        let mut ws = RefactorWorkspace::new();
        let err = refactor_frozen(&mut factors, &a_new, &mut ws).unwrap_err();
        assert!(matches!(
            err,
            LuError::EntryOutsideStructure { row: 3, col: 1 }
        ));
    }

    #[test]
    fn degraded_pivot_is_rejected() {
        let a = base_matrix();
        let mut factors = DynamicLuFactors::factorize(&a).unwrap();
        // Collapse the (0,0) pivot to zero.
        let a_new = perturbed(&a, &[(0, 0, 8.0, 0.0)]);
        let mut ws = RefactorWorkspace::new();
        let err = refactor_frozen(&mut factors, &a_new, &mut ws).unwrap_err();
        assert!(matches!(err, LuError::SingularPivot { index: 0, .. }));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = base_matrix();
        let mut factors = DynamicLuFactors::factorize(&a).unwrap();
        let small = diag_dominant(3, &[]);
        let mut ws = RefactorWorkspace::new();
        assert!(matches!(
            refactor_frozen(&mut factors, &small, &mut ws).unwrap_err(),
            LuError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn workspace_is_reusable_across_orders() {
        let mut ws = RefactorWorkspace::new();
        let large = diag_dominant(8, &[(5, 1, 1.0), (2, 6, -0.5)]);
        let mut f_large = DynamicLuFactors::factorize(&large).unwrap();
        let large_new = perturbed(&large, &[(5, 1, 1.0, 2.0)]);
        refactor_frozen(&mut f_large, &large_new, &mut ws).unwrap();
        assert_eq!(ws.capacity(), 8);
        let small = diag_dominant(3, &[(1, 0, 0.5)]);
        let mut f_small = DynamicLuFactors::factorize(&small).unwrap();
        let small_new = perturbed(&small, &[(1, 0, 0.5, -0.25)]);
        refactor_frozen(&mut f_small, &small_new, &mut ws).unwrap();
        assert_eq!(ws.capacity(), 8);
        let fresh_small = DynamicLuFactors::factorize(&small_new).unwrap();
        let fresh_large = DynamicLuFactors::factorize(&large_new).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((f_small.u(i, j) - fresh_small.u(i, j)).abs() < 1e-12);
            }
        }
        for i in 0..8 {
            for j in 0..8 {
                assert!((f_large.u(i, j) - fresh_large.u(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn repeated_refactors_do_not_drift() {
        // A long value-churn stream refactored step after step stays within
        // fresh-factorization accuracy (no error accumulation: each pass
        // recomputes from the matrix, unlike incremental sweeps).
        let a = base_matrix();
        let mut factors = DynamicLuFactors::factorize(&a).unwrap();
        let mut current = a;
        let mut ws = RefactorWorkspace::new();
        for step in 0..20 {
            let s = step as f64;
            let delta = vec![
                (0usize, 2usize, current.get(0, 2), 1.0 + 0.1 * s),
                (2, 1, current.get(2, 1), 2.0 - 0.05 * s),
            ];
            current = perturbed(&current, &delta);
            refactor_frozen(&mut factors, &current, &mut ws).unwrap();
        }
        let fresh = DynamicLuFactors::factorize(&current).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!((factors.l(i, j) - fresh.l(i, j)).abs() < 1e-12);
                assert!((factors.u(i, j) - fresh.u(i, j)).abs() < 1e-12);
            }
        }
    }
}
