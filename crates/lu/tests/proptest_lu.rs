//! Property-based tests for the LU engine: factorization against the dense
//! oracle, reordered solves, symbolic coverage and the structural behaviour
//! of the two storage back-ends.

use clude_lu::{
    amd_ordering, apply_delta, apply_delta_with, factorize_fresh, markowitz_ordering,
    refactor_frozen, solve_original, symbolic_decomposition, BennettWorkspace, DynamicLuFactors,
    LuFactors, LuStructure, RefactorWorkspace,
};
use clude_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

/// Applies a `(row, col, old, new)` delta list to a matrix.
fn updated_matrix(a: &CsrMatrix, delta: &[(usize, usize, f64, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(a.n_rows(), a.n_cols());
    for (i, j, v) in a.iter() {
        coo.push(i, j, v).unwrap();
    }
    for &(i, j, old, new) in delta {
        coo.push(i, j, new - old).unwrap();
    }
    CsrMatrix::from_coo(&coo)
}

/// A random sequence of off-diagonal delta lists against the running matrix.
fn delta_sequence() -> impl Strategy<Value = Vec<Vec<(usize, usize, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..9, 0usize..9, -0.2f64..0.2), 1..4),
        1..4,
    )
}

fn diag_dominant(n: usize, extra: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..extra.max(1)).prop_map(
        move |entries| {
            let mut coo = CooMatrix::new(n, n);
            let mut row_sums = vec![0.0; n];
            let mut offdiag = Vec::new();
            for (i, j, v) in entries {
                if i != j {
                    row_sums[i] += v.abs();
                    offdiag.push((i, j, v));
                }
            }
            for (i, sum) in row_sums.iter().enumerate() {
                coo.push(i, i, sum + 1.0).unwrap();
            }
            for (i, j, v) in offdiag {
                coo.push(i, j, v).unwrap();
            }
            CsrMatrix::from_coo(&coo)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparse_lu_matches_dense_oracle(a in diag_dominant(10, 28)) {
        let f = factorize_fresh(&a).unwrap();
        let (dl, du) = a.to_dense().lu_no_pivoting().unwrap();
        for i in 0..10 {
            for j in 0..10 {
                prop_assert!((f.l(i, j) - dl.get(i, j)).abs() < 1e-9);
                prop_assert!((f.u(i, j) - du.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reordered_solve_equals_dense_solve(a in diag_dominant(10, 30), rhs in proptest::collection::vec(-2.0f64..2.0, 10)) {
        let result = markowitz_ordering(&a.pattern());
        let reordered = a.reorder(&result.ordering).unwrap();
        let structure = LuStructure::from_pattern(&reordered.pattern()).unwrap().into_shared();
        let factors = LuFactors::factorize(structure, &reordered).unwrap();
        let x = solve_original(&factors, &result.ordering, &rhs).unwrap();
        let dense = a.to_dense().solve_gaussian(&rhs).unwrap();
        for (u, v) in x.iter().zip(dense.iter()) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn markowitz_symbolic_size_never_exceeds_natural(a in diag_dominant(12, 40)) {
        let pattern = a.pattern();
        let natural = symbolic_decomposition(&pattern).size();
        let ordered = markowitz_ordering(&pattern).symbolic_size;
        prop_assert!(ordered <= natural);
        // And the size is at least n (the diagonal is always present).
        prop_assert!(ordered >= 12);
    }

    #[test]
    fn dynamic_and_static_storage_agree_after_updates(
        a in diag_dominant(9, 22),
        changes in proptest::collection::vec((0usize..9, 0usize..9, -0.3f64..0.3), 1..5),
    ) {
        let delta: Vec<(usize, usize, f64, f64)> = changes
            .into_iter()
            .filter(|&(i, j, _)| i != j)
            .map(|(i, j, v)| (i, j, a.get(i, j), a.get(i, j) + v))
            .collect();
        prop_assume!(!delta.is_empty());
        // Dynamic path.
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        apply_delta(&mut dynamic, &delta).unwrap();
        // Static path over the union pattern.
        let mut coo = CooMatrix::new(9, 9);
        for (i, j, v) in a.iter() {
            coo.push(i, j, v).unwrap();
        }
        for &(i, j, old, new) in &delta {
            coo.push(i, j, new - old).unwrap();
        }
        let a_new = CsrMatrix::from_coo(&coo);
        let union = a.pattern().union(&a_new.pattern()).unwrap();
        let structure = LuStructure::from_pattern(&union).unwrap().into_shared();
        let mut fixed = LuFactors::factorize(structure, &a).unwrap();
        apply_delta(&mut fixed, &delta).unwrap();
        // Both agree on every solve.
        let b: Vec<f64> = (0..9).map(|i| 1.0 + i as f64 * 0.1).collect();
        let x1 = dynamic.solve(&b).unwrap();
        let x2 = fixed.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn reused_workspace_sweep_is_bit_identical(
        a in diag_dominant(9, 22),
        steps in delta_sequence(),
    ) {
        // One workspace threaded through a whole delta sequence must produce
        // exactly the factors (to the bit) a throwaway workspace per delta
        // produces — reuse is purely an allocation optimisation.
        let mut reused = DynamicLuFactors::factorize(&a).unwrap();
        let mut fresh = reused.clone();
        let mut ws = BennettWorkspace::new();
        let mut current = a.clone();
        for changes in steps {
            let delta: Vec<(usize, usize, f64, f64)> = changes
                .into_iter()
                .filter(|&(i, j, _)| i != j)
                .map(|(i, j, v)| (i, j, current.get(i, j), current.get(i, j) + v))
                .collect();
            if delta.is_empty() {
                continue;
            }
            let r1 = apply_delta_with(&mut reused, &mut ws, &delta);
            let r2 = apply_delta(&mut fresh, &delta);
            prop_assert_eq!(r1.is_ok(), r2.is_ok(), "reuse changed the outcome");
            if r1.is_err() {
                break;
            }
            prop_assert_eq!(r1.unwrap(), r2.unwrap());
            for i in 0..9 {
                for j in 0..9 {
                    prop_assert_eq!(
                        reused.l(i, j).to_bits(),
                        fresh.l(i, j).to_bits(),
                        "L({},{}) diverged", i, j
                    );
                    prop_assert_eq!(
                        reused.u(i, j).to_bits(),
                        fresh.u(i, j).to_bits(),
                        "U({},{}) diverged", i, j
                    );
                }
            }
            current = updated_matrix(&current, &delta);
        }
    }

    #[test]
    fn dynamic_storage_tracks_fresh_factorization_through_sequences(
        a in diag_dominant(9, 22),
        steps in delta_sequence(),
    ) {
        // After any delta sequence, the incrementally maintained dynamic
        // factors must solve like a from-scratch factorization of the final
        // matrix.
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        let mut ws = BennettWorkspace::with_order(9);
        let mut current = a.clone();
        for changes in steps {
            let delta: Vec<(usize, usize, f64, f64)> = changes
                .into_iter()
                .filter(|&(i, j, _)| i != j)
                .map(|(i, j, v)| (i, j, current.get(i, j), current.get(i, j) + v))
                .collect();
            if delta.is_empty() {
                continue;
            }
            if apply_delta_with(&mut dynamic, &mut ws, &delta).is_err() {
                // A singular intermediate pivot: nothing to compare.
                return Ok(());
            }
            current = updated_matrix(&current, &delta);
        }
        let oracle = match factorize_fresh(&current) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let b: Vec<f64> = (0..9).map(|i| 0.5 + i as f64 * 0.3).collect();
        let x1 = dynamic.solve(&b).unwrap();
        let x2 = oracle.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            prop_assert!((u - v).abs() < 1e-9, "{} vs {}", u, v);
        }
    }

    #[test]
    fn structure_covers_matrices_with_sub_patterns(a in diag_dominant(10, 30)) {
        // Build a structure from the matrix's pattern plus extra entries; the
        // factorization of the original matrix through that larger structure
        // must still be exact.
        let mut pattern = a.pattern();
        for k in 0..5usize {
            pattern.insert((k * 3) % 10, (k * 7 + 1) % 10);
        }
        let structure = LuStructure::from_pattern(&pattern).unwrap().into_shared();
        let loose = LuFactors::factorize(structure, &a).unwrap();
        let tight = factorize_fresh(&a).unwrap();
        prop_assert!(loose.nnz() >= tight.nnz());
        let b = vec![1.0; 10];
        let x1 = loose.solve(&b).unwrap();
        let x2 = tight.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn amd_ordering_is_a_valid_permutation_and_solves_exactly(
        a in diag_dominant(10, 30),
        rhs in proptest::collection::vec(-2.0f64..2.0, 10),
    ) {
        let result = amd_ordering(&a.pattern());
        let ord = &result.ordering;
        // Both permutations must be bijections on 0..n.
        for perm in [ord.row(), ord.col()] {
            prop_assert_eq!(perm.len(), 10);
            let mut seen = [false; 10];
            for i in 0..10 {
                let old = perm.new_to_old(i);
                prop_assert!(old < 10 && !seen[old], "duplicate image {}", old);
                seen[old] = true;
            }
        }
        // Factorizing through the AMD order solves the original system to
        // the same answer as the unordered fresh factorization.
        let reordered = a.reorder(ord).unwrap();
        let structure = LuStructure::from_pattern(&reordered.pattern())
            .unwrap()
            .into_shared();
        let factors = LuFactors::factorize(structure, &reordered).unwrap();
        let x = solve_original(&factors, ord, &rhs).unwrap();
        let fresh = factorize_fresh(&a).unwrap().solve(&rhs).unwrap();
        for (u, v) in x.iter().zip(fresh.iter()) {
            prop_assert!((u - v).abs() < 1e-9, "{} vs {}", u, v);
        }
    }

    #[test]
    fn refactor_matches_bennett_on_value_only_streams(
        a in diag_dominant(9, 24),
        // One bump per potential off-diagonal; zip truncates to the actual
        // count, which is at most the 24 generated entries.
        bumps in proptest::collection::vec(-0.15f64..0.15, 24),
    ) {
        let offdiag: Vec<(usize, usize, f64)> =
            a.iter().filter(|&(i, j, _)| i != j).collect();
        if offdiag.is_empty() {
            return Ok(());
        }
        // A value-only delta: every touched position already exists, so the
        // frozen-pattern refactorization and the Bennett sweep must agree.
        let delta: Vec<(usize, usize, f64, f64)> = offdiag
            .iter()
            .zip(&bumps)
            .map(|(&(i, j, v), &d)| (i, j, v, v + d))
            .collect();
        let mut bennett = DynamicLuFactors::factorize(&a).unwrap();
        let mut frozen = DynamicLuFactors::factorize(&a).unwrap();
        let mut ws = BennettWorkspace::new();
        if apply_delta_with(&mut bennett, &mut ws, &delta).is_err() {
            // A singular intermediate pivot: nothing to compare.
            return Ok(());
        }
        let updated = updated_matrix(&a, &delta);
        let mut rws = RefactorWorkspace::with_order(9);
        if refactor_frozen(&mut frozen, &updated, &mut rws).is_err() {
            return Ok(());
        }
        let b: Vec<f64> = (0..9).map(|i| 1.0 + 0.2 * i as f64).collect();
        let x1 = bennett.solve(&b).unwrap();
        let x2 = frozen.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            prop_assert!((u - v).abs() < 1e-9, "{} vs {}", u, v);
        }
    }
}
