//! Graph → matrix composition.
//!
//! The paper derives, from each snapshot graph `G_i` and a chosen measure, a
//! matrix `A_i` such that the measure is obtained by solving `A_i x = b`
//! (§1).  This module provides the two compositions used throughout the
//! reproduction:
//!
//! * [`MatrixKind::RandomWalk`] — `A = I − d·W`, where `W` is the
//!   column-normalised adjacency matrix (`W(j, i) = 1/λ(i)` for each edge
//!   `(i, j)`, with `λ(i)` the out-degree).  This is the matrix behind
//!   PageRank, personalised PageRank, RWR and discounted hitting time.
//! * [`MatrixKind::SymmetricLaplacian`] — `A = σ·I + D − Adj` for undirected
//!   graphs, the symmetric positive-definite composition used for the
//!   LUDEM-QC experiments (the paper's DBLP matrices are symmetric).

use crate::digraph::DiGraph;
use crate::egs::EvolvingGraphSequence;
use crate::partition::NodePartition;
use clude_sparse::{CooMatrix, CsrMatrix};

/// Which matrix to derive from a snapshot graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatrixKind {
    /// `A = I − d·W` with damping factor `d` and `W` the column-normalised
    /// adjacency matrix of the snapshot.
    RandomWalk {
        /// Damping factor `d ∈ (0, 1)`, typically 0.85.
        damping: f64,
    },
    /// `A = σ·I + D − Adj` (shifted combinatorial Laplacian) for undirected
    /// snapshots; symmetric and positive definite for `σ > 0`.
    SymmetricLaplacian {
        /// Diagonal shift `σ > 0`.
        shift: f64,
    },
}

impl MatrixKind {
    /// The conventional PageRank/RWR composition with damping 0.85.
    pub fn random_walk_default() -> Self {
        MatrixKind::RandomWalk { damping: 0.85 }
    }

    /// A well-conditioned symmetric composition (`σ = 1`).
    pub fn symmetric_default() -> Self {
        MatrixKind::SymmetricLaplacian { shift: 1.0 }
    }

    /// Returns `true` when matrices of this kind are symmetric by
    /// construction (given a symmetric input graph).
    pub fn produces_symmetric(&self) -> bool {
        matches!(self, MatrixKind::SymmetricLaplacian { .. })
    }
}

/// The column-normalised adjacency matrix `W` of a snapshot:
/// `W(j, i) = 1 / out_degree(i)` for every edge `(i, j)`.
pub fn column_normalized_adjacency(graph: &DiGraph) -> CsrMatrix {
    let n = graph.n_nodes();
    let mut coo = CooMatrix::with_capacity(n, n, graph.n_edges());
    for u in 0..n {
        let deg = graph.out_degree(u);
        if deg == 0 {
            continue;
        }
        let w = 1.0 / deg as f64;
        for v in graph.successors(u) {
            coo.push(v, u, w).expect("edge endpoints are in bounds");
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Streams the measure-matrix entries keyed by each source node in
/// `sources`: the node's diagonal entry plus the off-diagonal entries its
/// out-edges induce (column `u` of `I − d·W` — the entry `(v, u)` of `W`
/// contributes `-d·W` — or row `u` of `σ·I + D − Adj`, whose diagonal counts
/// undirected neighbours, the out-degree of a symmetric `DiGraph`).
///
/// The single source of truth for the composition: [`measure_matrix`],
/// [`shard_measure_matrix`] and [`coupling_matrix`] all feed from it, so the
/// sharded block/coupling split can never drift from the full matrix.
fn for_each_measure_entry(
    graph: &DiGraph,
    kind: MatrixKind,
    sources: impl Iterator<Item = usize>,
    mut emit: impl FnMut(usize, usize, f64),
) {
    match kind {
        MatrixKind::RandomWalk { damping } => {
            assert!(
                (0.0..1.0).contains(&damping),
                "damping factor must lie in [0, 1)"
            );
            for u in sources {
                emit(u, u, 1.0);
                let deg = graph.out_degree(u);
                if deg == 0 {
                    continue;
                }
                let w = damping / deg as f64;
                for v in graph.successors(u) {
                    emit(v, u, -w);
                }
            }
        }
        MatrixKind::SymmetricLaplacian { shift } => {
            assert!(shift > 0.0, "the diagonal shift must be positive");
            for u in sources {
                emit(u, u, shift + graph.out_degree(u) as f64);
                for v in graph.successors(u) {
                    emit(u, v, -1.0);
                }
            }
        }
    }
}

/// Derives the measure matrix `A` of the requested kind from a snapshot.
pub fn measure_matrix(graph: &DiGraph, kind: MatrixKind) -> CsrMatrix {
    let n = graph.n_nodes();
    let mut coo = CooMatrix::with_capacity(n, n, graph.n_edges() + n);
    for_each_measure_entry(graph, kind, 0..n, |i, j, v| {
        coo.push(i, j, v).expect("entries are in bounds");
    });
    CsrMatrix::from_coo(&coo)
}

/// The principal submatrix `A[S_s, S_s]` of the measure matrix over one
/// shard's nodes, in that shard's *local* coordinates.
///
/// Degree-dependent entries use the node's **global** degree (the RandomWalk
/// column weight `-d/λ(u)` counts cross-shard successors too, and the
/// Laplacian diagonal counts cross-shard neighbours), so the block-diagonal
/// of all shard matrices plus [`coupling_matrix`] reassembles
/// [`measure_matrix`] exactly.
pub fn shard_measure_matrix(
    graph: &DiGraph,
    kind: MatrixKind,
    partition: &NodePartition,
    shard: usize,
) -> CsrMatrix {
    assert_eq!(
        graph.n_nodes(),
        partition.n_nodes(),
        "partition must cover the graph's node universe"
    );
    let nodes = partition.nodes_of(shard);
    let m = nodes.len();
    let mut coo = CooMatrix::new(m, m);
    // Entries are keyed by their source node, so streaming the shard's own
    // nodes and keeping the rows/columns that stay inside the shard yields
    // exactly the principal submatrix.
    for_each_measure_entry(graph, kind, nodes.iter().copied(), |i, j, v| {
        if partition.shard_of(i) == shard && partition.shard_of(j) == shard {
            coo.push(partition.local_of(i), partition.local_of(j), v)
                .expect("local indices are in bounds");
        }
    });
    CsrMatrix::from_coo(&coo)
}

/// The cross-shard coupling matrix: [`measure_matrix`] restricted to the
/// entries whose row and column nodes live in *different* shards, in global
/// coordinates.  Diagonal entries are always intra-shard, so the coupling
/// holds only (negated, scaled) cross-shard adjacency.
pub fn coupling_matrix(graph: &DiGraph, kind: MatrixKind, partition: &NodePartition) -> CsrMatrix {
    assert_eq!(
        graph.n_nodes(),
        partition.n_nodes(),
        "partition must cover the graph's node universe"
    );
    let n = graph.n_nodes();
    let mut coo = CooMatrix::new(n, n);
    // Diagonal entries are always intra-shard, so the cross-shard filter
    // keeps exactly the (negated, scaled) cross-shard adjacency.
    for_each_measure_entry(graph, kind, 0..n, |i, j, v| {
        if !partition.is_intra(i, j) {
            coo.push(i, j, v).expect("edge endpoints are in bounds");
        }
    });
    CsrMatrix::from_coo(&coo)
}

/// Derives the evolving matrix sequence `M = {A_1, …, A_T}` from an EGS.
pub fn evolving_matrix_sequence(egs: &EvolvingGraphSequence, kind: MatrixKind) -> Vec<CsrMatrix> {
    egs.snapshots().map(|g| measure_matrix(&g, kind)).collect()
}

/// The right-hand side for a single-seed random-walk measure (RWR / PPR):
/// `b_u = (1 − d)·q_u` where `q_u` is the indicator vector of the seed.
pub fn rwr_rhs(n: usize, seed: usize, damping: f64) -> Vec<f64> {
    assert!(seed < n, "seed node out of range");
    let mut b = vec![0.0; n];
    b[seed] = 1.0 - damping;
    b
}

/// The right-hand side for global PageRank: `b = ((1 − d)/n)·1`.
pub fn pagerank_rhs(n: usize, damping: f64) -> Vec<f64> {
    vec![(1.0 - damping) / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> DiGraph {
        // 0 -> 1 -> 2, 0 -> 2
        DiGraph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn column_normalized_adjacency_columns_sum_to_one() {
        let g = chain_graph();
        let w = column_normalized_adjacency(&g);
        // Column u sums to 1 when out_degree(u) > 0.
        for u in 0..3 {
            let col_sum: f64 = (0..3).map(|v| w.get(v, u)).sum();
            if g.out_degree(u) > 0 {
                assert!((col_sum - 1.0).abs() < 1e-12);
            } else {
                assert_eq!(col_sum, 0.0);
            }
        }
        assert_eq!(w.get(1, 0), 0.5);
        assert_eq!(w.get(2, 1), 1.0);
    }

    #[test]
    fn random_walk_matrix_is_i_minus_dw() {
        let g = chain_graph();
        let d = 0.85;
        let a = measure_matrix(&g, MatrixKind::RandomWalk { damping: d });
        let w = column_normalized_adjacency(&g);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 } - d * w.get(i, j);
                assert!((a.get(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "damping factor")]
    fn random_walk_rejects_bad_damping() {
        measure_matrix(&chain_graph(), MatrixKind::RandomWalk { damping: 1.5 });
    }

    #[test]
    fn symmetric_laplacian_is_symmetric() {
        let mut g = DiGraph::new(4);
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        g.add_undirected_edge(2, 3);
        let a = measure_matrix(&g, MatrixKind::SymmetricLaplacian { shift: 0.5 });
        assert!(a.pattern().is_symmetric());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), a.get(j, i));
            }
        }
        // Diagonal = shift + degree.
        assert_eq!(a.get(1, 1), 0.5 + 2.0);
        assert_eq!(a.get(0, 0), 0.5 + 1.0);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn symmetric_laplacian_rejects_zero_shift() {
        measure_matrix(
            &chain_graph(),
            MatrixKind::SymmetricLaplacian { shift: 0.0 },
        );
    }

    #[test]
    fn evolving_matrix_sequence_has_one_matrix_per_snapshot() {
        let g1 = chain_graph();
        let mut g2 = chain_graph();
        g2.add_edge(2, 0);
        let egs = crate::egs::EvolvingGraphSequence::from_snapshots(vec![g1, g2]);
        let ems = evolving_matrix_sequence(&egs, MatrixKind::random_walk_default());
        assert_eq!(ems.len(), 2);
        assert_eq!(ems[0].n_rows(), 3);
        // Second snapshot has the extra edge reflected.
        assert!(ems[1].get(0, 2) < 0.0);
        assert_eq!(ems[0].get(0, 2), 0.0);
    }

    /// Reassembles the global matrix from per-shard blocks plus coupling and
    /// compares against the direct composition.
    fn assert_sharding_reassembles(graph: &DiGraph, kind: MatrixKind, partition: &NodePartition) {
        let n = graph.n_nodes();
        let full = measure_matrix(graph, kind);
        let coupling = coupling_matrix(graph, kind, partition);
        let mut coo = CooMatrix::new(n, n);
        for s in 0..partition.n_shards() {
            let block = shard_measure_matrix(graph, kind, partition, s);
            let nodes = partition.nodes_of(s);
            for (li, lj, v) in block.iter() {
                coo.push(nodes[li], nodes[lj], v).unwrap();
            }
        }
        for (i, j, v) in coupling.iter() {
            assert!(
                !partition.is_intra(i, j),
                "coupling entry ({i}, {j}) is intra-shard"
            );
            coo.push(i, j, v).unwrap();
        }
        let reassembled = CsrMatrix::from_coo(&coo);
        assert_eq!(reassembled.max_abs_diff(&full).unwrap(), 0.0);
    }

    #[test]
    fn shard_blocks_plus_coupling_reassemble_random_walk_matrix() {
        let mut g = DiGraph::from_edges(9, (0..9).map(|i| (i, (i + 1) % 9)).collect::<Vec<_>>());
        g.add_edge(0, 4);
        g.add_edge(7, 2);
        g.add_edge(3, 8);
        let p = NodePartition::contiguous(9, 3);
        assert_sharding_reassembles(&g, MatrixKind::random_walk_default(), &p);
    }

    #[test]
    fn shard_blocks_plus_coupling_reassemble_laplacian() {
        let mut g = DiGraph::new(8);
        for i in 0..7 {
            g.add_undirected_edge(i, i + 1);
        }
        g.add_undirected_edge(0, 5);
        g.add_undirected_edge(2, 7);
        let p = NodePartition::contiguous(8, 2);
        assert_sharding_reassembles(&g, MatrixKind::symmetric_default(), &p);
    }

    #[test]
    fn singleton_partition_has_empty_coupling() {
        let g = chain_graph();
        let p = NodePartition::singleton(3);
        let kind = MatrixKind::random_walk_default();
        assert_eq!(coupling_matrix(&g, kind, &p).nnz(), 0);
        let block = shard_measure_matrix(&g, kind, &p, 0);
        assert_eq!(block.max_abs_diff(&measure_matrix(&g, kind)).unwrap(), 0.0);
    }

    #[test]
    fn rhs_constructors() {
        let b = rwr_rhs(4, 2, 0.85);
        assert_eq!(b, vec![0.0, 0.0, 0.15000000000000002, 0.0]);
        let p = pagerank_rhs(4, 0.85);
        assert!((p.iter().sum::<f64>() - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn rwr_rhs_rejects_bad_seed() {
        rwr_rhs(3, 7, 0.85);
    }

    #[test]
    fn matrix_kind_helpers() {
        assert!(MatrixKind::symmetric_default().produces_symmetric());
        assert!(!MatrixKind::random_walk_default().produces_symmetric());
    }
}
