//! Block-triangular-form partitioning (the KLU BTF idea).
//!
//! KLU never factorizes a circuit matrix whole: it first permutes it to
//! *block triangular form* — a maximum transversal puts nonzeros on the whole
//! diagonal, then the strongly connected components of the resulting digraph
//! become diagonal blocks, ordered so every off-block entry lies on one side
//! of the diagonal.  Factorizing the blocks independently and substituting
//! through the off-block entries in topological order then solves the whole
//! system *exactly*, with no iteration.
//!
//! The sharded engine has precisely this shape: shards are diagonal blocks,
//! the coupling store holds the off-block entries, and block Gauss–Seidel is
//! the substitution.  A [`btf_partition`] therefore assigns nodes to shards
//! along SCC boundaries, numbering shards in dependency-topological order —
//! when the cross-shard structure is acyclic, the engine's Gauss–Seidel sweep
//! in shard order is a *direct* solve: one sweep, exact, no Woodbury
//! correction needed.
//!
//! Pieces, each usable on its own:
//!
//! * [`maximum_transversal`] — MC21-style augmenting-path matching of
//!   columns to rows, proving structural nonsingularity (the measure
//!   matrices of this reproduction carry a full diagonal, so their
//!   transversal is the identity — asserted, not assumed).
//! * [`scc_blocks`] — iterative Tarjan over a sparsity pattern viewed as a
//!   digraph (`entry (i, j) ⇒ edge i → j`), emitting component ids such
//!   that every cross-component entry satisfies `block(j) < block(i)`:
//!   block *lower* triangular, dependencies first.
//! * [`btf_partition`] — the full pipeline: measure-matrix pattern →
//!   transversal → SCC blocks → contiguous coarsening to at most
//!   `max_shards` balanced shards (contiguous grouping of topologically
//!   ordered blocks preserves triangularity).

use crate::digraph::DiGraph;
use crate::matrix::{measure_matrix, MatrixKind};
use crate::partition::NodePartition;
use clude_sparse::SparsityPattern;

/// Summary of a BTF analysis, reported alongside the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtfReport {
    /// Number of strongly connected components of the matrix digraph.
    pub n_sccs: usize,
    /// Size of the largest component (1 ⇒ fully triangularizable).
    pub largest_scc: usize,
    /// Whether the maximum transversal covered every column (structural
    /// nonsingularity) — always true for the engine's measure matrices.
    pub transversal_full: bool,
}

/// Finds a maximum transversal of a square pattern: a matching of columns to
/// distinct rows along structural entries, maximised by MC21-style
/// augmenting-path search.  Returns `row_of_col`, with `None` for columns the
/// maximum matching leaves uncovered (the pattern is then structurally
/// singular).
///
/// # Panics
/// Panics if the pattern is not square.
pub fn maximum_transversal(sp: &SparsityPattern) -> Vec<Option<usize>> {
    assert_eq!(
        sp.n_rows(),
        sp.n_cols(),
        "transversal needs a square pattern"
    );
    let n = sp.n_rows();
    // cols_of_row: the candidate columns each row can serve.
    let mut cols_of_row: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, j) in sp.iter() {
        cols_of_row[i].push(j);
    }
    let mut row_of_col: Vec<Option<usize>> = vec![None; n];
    let mut col_of_row: Vec<Option<usize>> = vec![None; n];
    // Iterative DFS augmenting path from each unmatched row.
    let mut visited = vec![usize::MAX; n]; // per-column visit stamp
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (row, next candidate idx)
    for start in 0..n {
        if col_of_row[start].is_some() {
            continue;
        }
        stack.clear();
        stack.push((start, 0));
        'search: while let Some(&mut (row, ref mut idx)) = stack.last_mut() {
            while *idx < cols_of_row[row].len() {
                let col = cols_of_row[row][*idx];
                *idx += 1;
                if visited[col] == start {
                    continue;
                }
                visited[col] = start;
                match row_of_col[col] {
                    // Free column: augment along the whole stack.
                    None => {
                        let mut carry = col;
                        for &(r, ref i) in stack.iter().rev() {
                            // The column each frame is currently trying is
                            // the one at `i - 1`.
                            let c = cols_of_row[r][*i - 1];
                            let _ = c;
                            row_of_col[carry] = Some(r);
                            let prev = col_of_row[r].replace(carry);
                            match prev {
                                Some(p) => carry = p,
                                None => break,
                            }
                        }
                        break 'search;
                    }
                    // Occupied: try to re-route its current row.
                    Some(occupant) => {
                        stack.push((occupant, 0));
                        continue 'search;
                    }
                }
            }
            stack.pop();
        }
    }
    row_of_col
}

/// Strongly connected components of a square pattern viewed as a digraph
/// (`entry (i, j), i ≠ j ⇒ edge i → j`, i.e. "row i depends on column j").
///
/// Returns `(block_of, n_blocks)` with components numbered in Tarjan emit
/// order, which is *reverse* topological for the dependency digraph: every
/// cross-component entry `(i, j)` satisfies `block_of[j] < block_of[i]`.
/// Reading blocks `0, 1, 2, …` therefore visits dependencies before
/// dependents — solving in that order needs each value exactly once.
///
/// # Panics
/// Panics if the pattern is not square.
pub fn scc_blocks(sp: &SparsityPattern) -> (Vec<usize>, usize) {
    assert_eq!(sp.n_rows(), sp.n_cols(), "SCCs need a square pattern");
    let n = sp.n_rows();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut block_of = vec![UNSET; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut n_blocks = 0usize;
    // Explicit DFS frames: (node, position within its successor row).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let row = sp.row(v);
            if *pos < row.len() {
                let w = row[*pos];
                *pos += 1;
                if w == v {
                    continue;
                }
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    scc_stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // v is finished: maybe an SCC root, then propagate lowlink.
                if lowlink[v] == index[v] {
                    loop {
                        let w = scc_stack.pop().expect("component members on stack");
                        on_stack[w] = false;
                        block_of[w] = n_blocks;
                        if w == v {
                            break;
                        }
                    }
                    n_blocks += 1;
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
    }
    (block_of, n_blocks)
}

/// Builds a BTF-ordered [`NodePartition`] for a snapshot: nodes are grouped
/// along the SCCs of the measure-matrix digraph, SCCs are numbered
/// dependencies-first, and consecutive SCCs are coarsened into at most
/// `max_shards` balanced shards.  Cross-shard coupling entries `(i, j)` of
/// the resulting partition always satisfy `shard(j) ≤ shard(i)` whenever the
/// cross-structure is acyclic — which the engine's coupling plan detects and
/// turns into a one-sweep exact Gauss–Seidel.
///
/// # Panics
/// Panics when the graph has no nodes or `max_shards` is zero.
pub fn btf_partition(
    graph: &DiGraph,
    kind: MatrixKind,
    max_shards: usize,
) -> (NodePartition, BtfReport) {
    assert!(graph.n_nodes() > 0, "cannot partition an empty universe");
    assert!(max_shards > 0, "need at least one shard");
    let n = graph.n_nodes();
    let sp = measure_matrix(graph, kind).pattern();
    let transversal = maximum_transversal(&sp);
    let transversal_full = transversal.iter().all(Option::is_some);
    let (block_of, n_blocks) = scc_blocks(&sp);
    let mut block_sizes = vec![0usize; n_blocks];
    for &b in &block_of {
        block_sizes[b] += 1;
    }
    let largest_scc = block_sizes.iter().copied().max().unwrap_or(0);

    // Coarsen consecutive blocks into at most `max_shards` groups of roughly
    // equal node count.  Contiguity in block order preserves triangularity;
    // the per-group target keeps shards balanced for the parallel sweeps.
    let n_shards = max_shards.min(n_blocks);
    let target = n.div_ceil(n_shards);
    let mut group_of_block = vec![0usize; n_blocks];
    let mut group = 0usize;
    let mut in_group = 0usize;
    for b in 0..n_blocks {
        if in_group >= target && group + 1 < n_shards {
            group += 1;
            in_group = 0;
        }
        group_of_block[b] = group;
        in_group += block_sizes[b];
    }
    let assignments: Vec<usize> = block_of.iter().map(|&b| group_of_block[b]).collect();
    let partition = NodePartition::from_assignments(assignments);
    (
        partition,
        BtfReport {
            n_sccs: n_blocks,
            largest_scc,
            transversal_full,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize, entries: &[(usize, usize)]) -> SparsityPattern {
        SparsityPattern::from_entries(n, n, entries.to_vec()).unwrap()
    }

    #[test]
    fn transversal_of_full_diagonal_is_identity() {
        let sp = pattern(3, &[(0, 0), (1, 1), (2, 2), (0, 2)]);
        let t = maximum_transversal(&sp);
        assert_eq!(t, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn transversal_augments_through_occupied_columns() {
        // Row 0 can only serve column 1; row 1 can serve 0 or 1.  The
        // augmenting path must re-route row 1 to column 0.
        let sp = pattern(2, &[(0, 1), (1, 0), (1, 1)]);
        let t = maximum_transversal(&sp);
        assert_eq!(t[0], Some(1));
        assert_eq!(t[1], Some(0));
    }

    #[test]
    fn structurally_singular_pattern_leaves_a_column_unmatched() {
        // Column 2 has no entries at all.
        let sp = pattern(3, &[(0, 0), (1, 1), (2, 0), (2, 1)]);
        let t = maximum_transversal(&sp);
        assert_eq!(t[2], None);
        assert_eq!(t.iter().filter(|m| m.is_some()).count(), 2);
    }

    #[test]
    fn scc_blocks_order_dependencies_first() {
        // 0 depends on 1 (entry (0,1)), 1 depends on 2: blocks must come out
        // with block(2) < block(1) < block(0).
        let sp = pattern(3, &[(0, 0), (1, 1), (2, 2), (0, 1), (1, 2)]);
        let (block_of, n_blocks) = scc_blocks(&sp);
        assert_eq!(n_blocks, 3);
        assert!(block_of[2] < block_of[1]);
        assert!(block_of[1] < block_of[0]);
    }

    #[test]
    fn scc_blocks_group_cycles() {
        // 0 ↔ 1 form one component; 2 depends on both.
        let sp = pattern(3, &[(0, 0), (1, 1), (2, 2), (0, 1), (1, 0), (2, 0), (2, 1)]);
        let (block_of, n_blocks) = scc_blocks(&sp);
        assert_eq!(n_blocks, 2);
        assert_eq!(block_of[0], block_of[1]);
        assert!(block_of[0] < block_of[2]);
    }

    #[test]
    fn cross_block_entries_are_lower_triangular_in_block_order() {
        // Random-ish DAG-with-cycles pattern; the invariant must hold for
        // every cross-block entry.
        let sp = pattern(
            6,
            &[
                (0, 0),
                (1, 1),
                (2, 2),
                (3, 3),
                (4, 4),
                (5, 5),
                (0, 1),
                (1, 0), // cycle {0,1}
                (2, 0),
                (3, 2),
                (4, 3),
                (3, 4), // cycle {3,4}
                (5, 4),
            ],
        );
        let (block_of, _) = scc_blocks(&sp);
        for (i, j) in sp.iter() {
            if block_of[i] != block_of[j] {
                assert!(
                    block_of[j] < block_of[i],
                    "entry ({i},{j}) violates block triangularity"
                );
            }
        }
    }

    #[test]
    fn btf_partition_on_dag_graph_is_triangular() {
        // A chain of 3-cliques connected acyclically (RandomWalk: edge u→v
        // makes row v depend on column u — shard(v's block) must come after).
        let mut edges = Vec::new();
        for c in 0..3 {
            let base = c * 3;
            for a in 0..3 {
                for b in 0..3 {
                    if a != b {
                        edges.push((base + a, base + b));
                    }
                }
            }
            if c > 0 {
                edges.push((base - 1, base)); // forward edge between cliques
            }
        }
        let g = DiGraph::from_edges(9, edges);
        let kind = MatrixKind::random_walk_default();
        let (p, report) = btf_partition(&g, kind, 3);
        assert!(report.transversal_full);
        assert_eq!(report.n_sccs, 3);
        assert_eq!(report.largest_scc, 3);
        assert_eq!(p.n_shards(), 3);
        // Every cross-shard matrix entry must point from a later shard's row
        // to an earlier shard's column.
        let sp = measure_matrix(&g, kind).pattern();
        for (i, j) in sp.iter() {
            if p.shard_of(i) != p.shard_of(j) {
                assert!(p.shard_of(j) < p.shard_of(i));
            }
        }
    }

    #[test]
    fn btf_partition_coarsens_to_max_shards() {
        // A pure DAG chain of 12 singleton SCCs coarsened into 4 shards.
        let edges: Vec<(usize, usize)> = (0..11).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(12, edges);
        let kind = MatrixKind::random_walk_default();
        let (p, report) = btf_partition(&g, kind, 4);
        assert_eq!(report.n_sccs, 12);
        assert_eq!(p.n_shards(), 4);
        let sizes = p.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 12);
        assert!(sizes.iter().all(|&s| s == 3), "balanced groups: {sizes:?}");
        // Triangularity survives coarsening.
        let sp = measure_matrix(&g, kind).pattern();
        for (i, j) in sp.iter() {
            if p.shard_of(i) != p.shard_of(j) {
                assert!(p.shard_of(j) < p.shard_of(i));
            }
        }
    }

    #[test]
    fn one_big_cycle_collapses_to_one_shard() {
        let edges: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g = DiGraph::from_edges(6, edges);
        let (p, report) = btf_partition(&g, MatrixKind::random_walk_default(), 4);
        assert_eq!(report.n_sccs, 1);
        assert_eq!(report.largest_scc, 6);
        assert_eq!(p.n_shards(), 1);
    }

    #[test]
    fn symmetric_laplacian_components_become_shards() {
        // Two disconnected undirected triangles: two SCCs, no cross coupling.
        let mut edges = Vec::new();
        for base in [0usize, 3] {
            for a in 0..3 {
                for b in 0..3 {
                    if a != b {
                        edges.push((base + a, base + b));
                    }
                }
            }
        }
        let g = DiGraph::from_edges(6, edges);
        let (p, report) = btf_partition(&g, MatrixKind::symmetric_default(), 2);
        assert!(report.transversal_full);
        assert_eq!(report.n_sccs, 2);
        assert_eq!(p.n_shards(), 2);
    }
}
