//! # clude-graph
//!
//! Evolving graph sequences (EGS) and dataset generators for the CLUDE
//! (EDBT 2014) reproduction.
//!
//! * [`digraph::DiGraph`] — one snapshot graph.
//! * [`delta::GraphDelta`] — edge changes between successive snapshots.
//! * [`egs::EvolvingGraphSequence`] — the archived sequence `{G_1, …, G_T}`.
//! * [`matrix`] — graph → matrix composition (`A = I − dW`, symmetric
//!   Laplacian) producing the evolving matrix sequence the LU machinery
//!   consumes, plus the sharded block/coupling split of that composition.
//! * [`partition`] — [`partition::NodePartition`], the node→shard map the
//!   streaming engine shards its factor store by.
//! * [`btf`] — block-triangular-form analysis (maximum transversal + SCC
//!   blocks, the KLU/BTF idea) producing partitions whose cross-shard
//!   coupling is triangular, so block Gauss–Seidel solves them in one sweep.
//! * [`generators`] — the paper's synthetic generator plus Wiki-like,
//!   DBLP-like and patent-citation-like dataset simulators.
//! * [`wire`] — the little-endian binary codec the engine's write-ahead log
//!   and checkpoints persist deltas, graphs and partitions with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btf;
pub mod delta;
pub mod digraph;
pub mod egs;
pub mod generators;
pub mod matrix;
pub mod partition;
pub mod wire;

pub use btf::{btf_partition, maximum_transversal, scc_blocks, BtfReport};
pub use delta::{DeltaClass, GraphDelta};
pub use digraph::DiGraph;
pub use egs::EvolvingGraphSequence;
pub use matrix::{
    coupling_matrix, evolving_matrix_sequence, measure_matrix, shard_measure_matrix, MatrixKind,
};
pub use partition::NodePartition;
pub use wire::{WireError, WireReader, WireResult, WireWriter};
