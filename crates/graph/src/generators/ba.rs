//! Barabási–Albert (BA) preferential-attachment generator.
//!
//! The paper's synthetic EGS generator (§6) uses the BA model \[4\] to build a
//! scale-free base graph whose edges form the "edge pool" from which
//! snapshots evolve.  This module implements the standard BA process: nodes
//! arrive one at a time and attach `m` edges to existing nodes chosen with
//! probability proportional to their current degree.

use crate::digraph::DiGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the BA generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaConfig {
    /// Total number of nodes to generate.
    pub n_nodes: usize,
    /// Number of edges each arriving node attaches (also the size of the
    /// initial clique-like core).
    pub edges_per_node: usize,
}

impl BaConfig {
    /// Configuration that targets roughly `n_edges` total edges.
    pub fn with_target_edges(n_nodes: usize, n_edges: usize) -> Self {
        let m = (n_edges / n_nodes.max(1)).max(1);
        BaConfig {
            n_nodes,
            edges_per_node: m,
        }
    }
}

/// Generates a directed scale-free graph with the BA process.
///
/// Edges are oriented from the newly arrived node to the attachment target,
/// which yields the skewed *in*-degree distribution typical of citation and
/// hyperlink graphs.
pub fn generate<R: Rng>(config: BaConfig, rng: &mut R) -> DiGraph {
    let n = config.n_nodes;
    let m = config.edges_per_node.max(1);
    let mut g = DiGraph::new(n);
    if n == 0 {
        return g;
    }
    let core = (m + 1).min(n);
    // Start with a small connected core: a directed ring over `core` nodes.
    let mut attachment_pool: Vec<usize> = Vec::with_capacity(2 * n * m);
    for u in 0..core {
        let v = (u + 1) % core;
        if u != v && g.add_edge(u, v) {
            attachment_pool.push(u);
            attachment_pool.push(v);
        }
    }
    for u in core..n {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m.min(u) {
            // Preferential attachment: sample from the pool of edge endpoints
            // (each node appears once per incident edge).
            let candidate = if attachment_pool.is_empty() || rng.gen_bool(0.05) {
                rng.gen_range(0..u)
            } else {
                *attachment_pool
                    .choose(rng)
                    .expect("pool checked to be non-empty")
            };
            if candidate != u && !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for v in targets {
            if g.add_edge(u, v) {
                attachment_pool.push(u);
                attachment_pool.push(v);
            }
        }
    }
    g
}

/// Fits the exponent of a power-law `P(k) ∝ k^(-γ)` to the in-degree
/// distribution via a simple log-log least-squares fit.  Used by tests to
/// check the generator is scale-free-ish, mirroring the paper's claim that
/// its synthetic snapshots are scale free with γ ≈ 3.
pub fn estimate_power_law_exponent(graph: &DiGraph) -> Option<f64> {
    let mut counts = std::collections::BTreeMap::new();
    for u in 0..graph.n_nodes() {
        let d = graph.in_degree(u);
        if d > 0 {
            *counts.entry(d).or_insert(0usize) += 1;
        }
    }
    if counts.len() < 3 {
        return None;
    }
    let points: Vec<(f64, f64)> = counts
        .iter()
        .map(|(&k, &c)| ((k as f64).ln(), (c as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generate(
            BaConfig {
                n_nodes: 200,
                edges_per_node: 3,
            },
            &mut rng,
        );
        assert_eq!(g.n_nodes(), 200);
        // Roughly m edges per arriving node.
        assert!(g.n_edges() >= 3 * 150 && g.n_edges() <= 3 * 200 + 10);
    }

    #[test]
    fn with_target_edges_hits_density() {
        let cfg = BaConfig::with_target_edges(100, 900);
        assert_eq!(cfg.edges_per_node, 9);
        let mut rng = StdRng::seed_from_u64(1);
        let g = generate(cfg, &mut rng);
        assert!(g.n_edges() > 600);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = generate(
            BaConfig {
                n_nodes: 600,
                edges_per_node: 4,
            },
            &mut rng,
        );
        // A hub should exist: max in-degree well above the average.
        let max_in = (0..g.n_nodes()).map(|u| g.in_degree(u)).max().unwrap();
        assert!(max_in as f64 > 5.0 * g.average_out_degree());
        // And the fitted exponent should be in a plausible scale-free band.
        let gamma = estimate_power_law_exponent(&g).unwrap();
        assert!(gamma > 0.8 && gamma < 5.0, "gamma = {gamma}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = BaConfig {
            n_nodes: 50,
            edges_per_node: 2,
        };
        let a = generate(cfg, &mut StdRng::seed_from_u64(9));
        let b = generate(cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty = generate(
            BaConfig {
                n_nodes: 0,
                edges_per_node: 3,
            },
            &mut rng,
        );
        assert_eq!(empty.n_nodes(), 0);
        let single = generate(
            BaConfig {
                n_nodes: 1,
                edges_per_node: 3,
            },
            &mut rng,
        );
        assert_eq!(single.n_edges(), 0);
    }
}
