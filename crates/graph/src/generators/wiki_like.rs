//! Wiki-like evolving hyperlink graph simulator.
//!
//! The paper's Wiki dataset is a 1000-day EGS of 20 000 Wikipedia pages whose
//! hyperlink count grows from 56 181 to 138 072 with an average
//! successive-snapshot similarity of 99.88 %.  The real crawl is not
//! redistributable, so this module synthesises an EGS with the same
//! *behavioural* characteristics (see DESIGN.md → substitutions):
//!
//! * directed edges, heavily skewed in-degree (preferential attachment),
//! * edge additions dominating removals so the edge count grows by ~2.5×
//!   over the sequence,
//! * a small per-step churn so successive snapshots stay >99 % similar,
//! * occasional "editing bursts" where one page gains or loses many links at
//!   once — these produce the key-moment jumps of the paper's Figure 1/2.

use super::ba::{self, BaConfig};
use crate::delta::GraphDelta;
use crate::egs::EvolvingGraphSequence;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the Wiki-like EGS simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WikiLikeConfig {
    /// Number of pages (nodes).
    pub n_pages: usize,
    /// Hyperlink count of the first snapshot.
    pub initial_links: usize,
    /// Target hyperlink count of the last snapshot.
    pub final_links: usize,
    /// Number of daily snapshots.
    pub n_snapshots: usize,
    /// Number of links removed per snapshot (churn besides net growth).
    pub removals_per_snapshot: usize,
    /// Probability that a snapshot contains an editing burst (one page gains
    /// `burst_size` incoming or outgoing links at once).
    pub burst_probability: f64,
    /// Number of links affected by a burst.
    pub burst_size: usize,
}

impl Default for WikiLikeConfig {
    /// Laptop-scale configuration: 1 500 pages, 80 snapshots, edge count
    /// growing 2.5× like the paper's crawl.
    fn default() -> Self {
        WikiLikeConfig {
            n_pages: 1_500,
            initial_links: 4_200,
            final_links: 10_300,
            n_snapshots: 80,
            removals_per_snapshot: 6,
            burst_probability: 0.08,
            burst_size: 25,
        }
    }
}

impl WikiLikeConfig {
    /// The paper-scale configuration (20 000 pages, 1000 snapshots).
    pub fn paper_scale() -> Self {
        WikiLikeConfig {
            n_pages: 20_000,
            initial_links: 56_181,
            final_links: 138_072,
            n_snapshots: 1_000,
            removals_per_snapshot: 20,
            burst_probability: 0.05,
            burst_size: 30,
        }
    }

    /// A very small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        WikiLikeConfig {
            n_pages: 200,
            initial_links: 600,
            final_links: 1_400,
            n_snapshots: 20,
            removals_per_snapshot: 3,
            burst_probability: 0.15,
            burst_size: 10,
        }
    }

    /// Net number of links added per step so the last snapshot reaches
    /// `final_links`.
    fn net_growth_per_step(&self) -> usize {
        if self.n_snapshots <= 1 {
            return 0;
        }
        (self.final_links.saturating_sub(self.initial_links)) / (self.n_snapshots - 1)
    }
}

/// Generates a Wiki-like evolving hyperlink EGS.
pub fn generate<R: Rng>(config: &WikiLikeConfig, rng: &mut R) -> EvolvingGraphSequence {
    assert!(config.n_pages > 2, "need at least three pages");
    assert!(
        config.final_links >= config.initial_links,
        "the Wiki-like sequence grows over time"
    );
    // First snapshot: scale-free hyperlink structure.
    let first = ba::generate(
        BaConfig::with_target_edges(config.n_pages, config.initial_links),
        rng,
    );
    // Attachment weights follow in-degree + 1 so popular pages keep
    // attracting links, as in the real web.
    let mut popularity: Vec<usize> = (0..config.n_pages)
        .map(|u| first.in_degree(u) + 1)
        .collect();
    let mut current = first.clone();
    let mut egs = EvolvingGraphSequence::from_base(first);

    let growth = config.net_growth_per_step();
    for _ in 1..config.n_snapshots {
        let mut delta = GraphDelta::empty();
        // Churn: remove a few random existing links.
        let existing: Vec<(usize, usize)> = current.edges().collect();
        for _ in 0..config.removals_per_snapshot.min(existing.len() / 2) {
            if let Some(&(u, v)) = existing.choose(rng) {
                if current.remove_edge(u, v) {
                    popularity[v] = popularity[v].saturating_sub(1).max(1);
                    delta.removed.push((u, v));
                }
            }
        }
        // Net growth plus replacements for the churned links.
        let to_add = growth + delta.removed.len();
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < to_add && guard < 50 * to_add + 100 {
            guard += 1;
            let u = rng.gen_range(0..config.n_pages);
            let v = sample_weighted(&popularity, rng);
            if u != v && current.add_edge(u, v) {
                popularity[v] += 1;
                delta.added.push((u, v));
                added += 1;
            }
        }
        // Occasional editing burst (paper Fig. 2: a page suddenly gains many
        // in-links, or a hub page gains many out-links).
        if rng.gen_bool(config.burst_probability) {
            let page = rng.gen_range(0..config.n_pages);
            let outgoing_burst = rng.gen_bool(0.5);
            let mut burst_added = 0usize;
            let mut guard = 0usize;
            while burst_added < config.burst_size && guard < 20 * config.burst_size {
                guard += 1;
                let other = rng.gen_range(0..config.n_pages);
                let (u, v) = if outgoing_burst {
                    (page, other)
                } else {
                    (other, page)
                };
                if u != v && current.add_edge(u, v) {
                    popularity[v] += 1;
                    delta.added.push((u, v));
                    burst_added += 1;
                }
            }
        }
        egs.push_delta(delta);
    }
    egs
}

fn sample_weighted<R: Rng>(weights: &[usize], rng: &mut R) -> usize {
    let total: usize = weights.iter().sum();
    if total == 0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_requested_shape() {
        let cfg = WikiLikeConfig::tiny();
        let egs = generate(&cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(egs.len(), cfg.n_snapshots);
        assert_eq!(egs.n_nodes(), cfg.n_pages);
    }

    #[test]
    fn edge_count_grows_like_the_paper() {
        let cfg = WikiLikeConfig::tiny();
        let egs = generate(&cfg, &mut StdRng::seed_from_u64(8));
        let (first, last) = egs.first_last_edge_counts();
        assert!(last > first, "edge count must grow ({first} -> {last})");
        // Should reach a substantial fraction of the configured target.
        assert!(last as f64 >= 0.6 * cfg.final_links as f64);
    }

    #[test]
    fn successive_snapshots_remain_similar() {
        let cfg = WikiLikeConfig::tiny();
        let egs = generate(&cfg, &mut StdRng::seed_from_u64(21));
        assert!(egs.average_successive_similarity() > 0.93);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = WikiLikeConfig::tiny();
        let a = generate(&cfg, &mut StdRng::seed_from_u64(5));
        let b = generate(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(
            a.snapshot(cfg.n_snapshots - 1),
            b.snapshot(cfg.n_snapshots - 1)
        );
    }

    #[test]
    fn in_degree_is_skewed() {
        let cfg = WikiLikeConfig::tiny();
        let egs = generate(&cfg, &mut StdRng::seed_from_u64(12));
        let last = egs.snapshot(cfg.n_snapshots - 1);
        let max_in = (0..last.n_nodes())
            .map(|u| last.in_degree(u))
            .max()
            .unwrap();
        let avg = last.n_edges() as f64 / last.n_nodes() as f64;
        assert!(max_in as f64 > 3.0 * avg);
    }

    #[test]
    #[should_panic(expected = "grows over time")]
    fn rejects_shrinking_configuration() {
        let cfg = WikiLikeConfig {
            initial_links: 100,
            final_links: 50,
            ..WikiLikeConfig::tiny()
        };
        generate(&cfg, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn default_and_paper_scale_are_consistent() {
        let d = WikiLikeConfig::default();
        assert!(d.final_links > d.initial_links);
        let p = WikiLikeConfig::paper_scale();
        assert_eq!(p.n_pages, 20_000);
        assert_eq!(p.n_snapshots, 1_000);
        assert!(p.net_growth_per_step() >= 80);
    }
}
