//! The paper's synthetic EGS generator (§6, "Synthetic").
//!
//! The generator takes the five parameters the paper lists (plus the node
//! count) and produces an evolving graph sequence:
//!
//! 1. Build a scale-free *base graph* with `V` vertices and `|EP|` edges
//!    using the BA model; its edges form the edge pool `EP`.
//! 2. The first snapshot's edge set `E` is a random sample of `d·V` edges
//!    from `EP`.
//! 3. Every subsequent snapshot removes `ΔE⁻ = ΔE/(k+1)` random edges from
//!    `E` and adds `ΔE⁺ = k·ΔE/(k+1)` random edges from `EP − E`.
//!
//! Paper defaults: `V = 50 000`, `|EP| = 450 000`, `d = 5`, `k = 4`,
//! `ΔE = 500`, `T = 500`.  The defaults here are scaled down (see
//! `DESIGN.md`) so the full reproduction runs quickly; the paper-scale values
//! can be requested explicitly.

use super::ba::{self, BaConfig};
use crate::delta::GraphDelta;
use crate::digraph::DiGraph;
use crate::egs::EvolvingGraphSequence;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the synthetic EGS generator (names follow the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// `V`: number of vertices.
    pub n_vertices: usize,
    /// `|EP|`: number of edges in the edge pool.
    pub edge_pool_size: usize,
    /// `d`: average vertex degree of the first snapshot.
    pub initial_degree: usize,
    /// `k`: ratio `ΔE⁺ / ΔE⁻` between added and removed edges per step.
    pub add_remove_ratio: usize,
    /// `ΔE = ΔE⁺ + ΔE⁻`: number of edge changes per step.
    pub delta_e: usize,
    /// `T`: number of snapshots.
    pub n_snapshots: usize,
}

impl Default for SyntheticConfig {
    /// A laptop-scale configuration preserving the paper's ratios:
    /// pool is 9× the vertex count, initial degree 5, `k = 4`.
    fn default() -> Self {
        SyntheticConfig {
            n_vertices: 1_000,
            edge_pool_size: 9_000,
            initial_degree: 5,
            add_remove_ratio: 4,
            delta_e: 50,
            n_snapshots: 60,
        }
    }
}

impl SyntheticConfig {
    /// The exact parameter values used in the paper (§6).
    pub fn paper_scale() -> Self {
        SyntheticConfig {
            n_vertices: 50_000,
            edge_pool_size: 450_000,
            initial_degree: 5,
            add_remove_ratio: 4,
            delta_e: 500,
            n_snapshots: 500,
        }
    }

    /// Number of edges removed per step, `ΔE⁻ = ΔE/(k+1)`.
    pub fn edges_removed_per_step(&self) -> usize {
        self.delta_e / (self.add_remove_ratio + 1)
    }

    /// Number of edges added per step, `ΔE⁺ = k·ΔE/(k+1)`.
    pub fn edges_added_per_step(&self) -> usize {
        (self.add_remove_ratio * self.delta_e) / (self.add_remove_ratio + 1)
    }
}

/// Generates a synthetic EGS following the paper's procedure.
pub fn generate<R: Rng>(config: &SyntheticConfig, rng: &mut R) -> EvolvingGraphSequence {
    assert!(config.n_vertices > 1, "need at least two vertices");
    assert!(config.n_snapshots >= 1, "need at least one snapshot");
    assert!(
        config.initial_degree * config.n_vertices <= config.edge_pool_size,
        "the edge pool must be at least as large as the first snapshot"
    );
    // Step 1: scale-free base graph; its edges are the pool EP.
    let base = ba::generate(
        BaConfig::with_target_edges(config.n_vertices, config.edge_pool_size),
        rng,
    );
    let mut pool: Vec<(usize, usize)> = base.edges().collect();
    // Top up the pool with random edges if BA produced fewer than |EP|.
    let mut guard = 0usize;
    while pool.len() < config.edge_pool_size && guard < 20 * config.edge_pool_size {
        let u = rng.gen_range(0..config.n_vertices);
        let v = rng.gen_range(0..config.n_vertices);
        guard += 1;
        if u != v && !base.has_edge(u, v) && !pool[base.n_edges()..].contains(&(u, v)) {
            pool.push((u, v));
        }
    }
    pool.shuffle(rng);

    // Step 2: first snapshot = random d·V edges from EP.
    let first_size = (config.initial_degree * config.n_vertices).min(pool.len());
    let mut in_e: Vec<bool> = vec![false; pool.len()];
    for flag in in_e.iter_mut().take(first_size) {
        *flag = true;
    }
    let first = DiGraph::from_edges(
        config.n_vertices,
        pool.iter()
            .zip(in_e.iter())
            .filter(|(_, &f)| f)
            .map(|(&e, _)| e),
    );
    let mut egs = EvolvingGraphSequence::from_base(first);

    // Step 3: evolve by random removals from E and additions from EP − E.
    let remove_per_step = config.edges_removed_per_step();
    let add_per_step = config.edges_added_per_step();
    let mut current_members: Vec<usize> = (0..first_size).collect();
    let mut non_members: Vec<usize> = (first_size..pool.len()).collect();
    for _ in 1..config.n_snapshots {
        let mut delta = GraphDelta::empty();
        // Removals.
        for _ in 0..remove_per_step.min(current_members.len().saturating_sub(1)) {
            let idx = rng.gen_range(0..current_members.len());
            let pool_idx = current_members.swap_remove(idx);
            in_e[pool_idx] = false;
            non_members.push(pool_idx);
            delta.removed.push(pool[pool_idx]);
        }
        // Additions.
        for _ in 0..add_per_step.min(non_members.len()) {
            let idx = rng.gen_range(0..non_members.len());
            let pool_idx = non_members.swap_remove(idx);
            in_e[pool_idx] = true;
            current_members.push(pool_idx);
            delta.added.push(pool[pool_idx]);
        }
        egs.push_delta(delta);
    }
    egs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            n_vertices: 120,
            edge_pool_size: 1_000,
            initial_degree: 4,
            add_remove_ratio: 4,
            delta_e: 30,
            n_snapshots: 12,
        }
    }

    #[test]
    fn respects_snapshot_count_and_node_count() {
        let mut rng = StdRng::seed_from_u64(11);
        let egs = generate(&small_config(), &mut rng);
        assert_eq!(egs.len(), 12);
        assert_eq!(egs.n_nodes(), 120);
    }

    #[test]
    fn first_snapshot_has_requested_density() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = small_config();
        let egs = generate(&cfg, &mut rng);
        let first = egs.snapshot(0);
        assert_eq!(first.n_edges(), cfg.initial_degree * cfg.n_vertices);
    }

    #[test]
    fn net_growth_follows_k_ratio() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = small_config();
        let egs = generate(&cfg, &mut rng);
        let (first, last) = egs.first_last_edge_counts();
        // Each step adds 24 and removes 6 edges (k = 4, ΔE = 30): net +18.
        let expected_growth =
            (cfg.n_snapshots - 1) * (cfg.edges_added_per_step() - cfg.edges_removed_per_step());
        let actual_growth = last as i64 - first as i64;
        // Additions may occasionally collide with existing edges; allow slack.
        assert!(actual_growth > 0);
        assert!(actual_growth <= expected_growth as i64);
        assert!(actual_growth >= (expected_growth as i64) / 2);
    }

    #[test]
    fn successive_snapshots_are_similar() {
        let mut rng = StdRng::seed_from_u64(23);
        let egs = generate(&small_config(), &mut rng);
        let sim = egs.average_successive_similarity();
        assert!(sim > 0.9, "similarity {sim} too low");
    }

    #[test]
    fn per_step_change_counts() {
        let cfg = small_config();
        assert_eq!(cfg.edges_removed_per_step(), 6);
        assert_eq!(cfg.edges_added_per_step(), 24);
        let paper = SyntheticConfig::paper_scale();
        assert_eq!(paper.edges_removed_per_step(), 100);
        assert_eq!(paper.edges_added_per_step(), 400);
    }

    #[test]
    #[should_panic(expected = "edge pool")]
    fn rejects_pool_smaller_than_first_snapshot() {
        let mut cfg = small_config();
        cfg.edge_pool_size = 10;
        generate(&cfg, &mut StdRng::seed_from_u64(1));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = small_config();
        let a = generate(&cfg, &mut StdRng::seed_from_u64(77));
        let b = generate(&cfg, &mut StdRng::seed_from_u64(77));
        assert_eq!(a.snapshot(11), b.snapshot(11));
    }
}
