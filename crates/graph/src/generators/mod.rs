//! Dataset generators.
//!
//! The paper evaluates on two real EGS's (Wiki hyperlinks, DBLP
//! co-authorship), one synthetic EGS family, and a patent-citation dataset
//! for the case study.  The real datasets are not redistributable, so each is
//! replaced by a simulator that reproduces the statistics the algorithms are
//! sensitive to; the synthetic family follows the paper's own generator.  See
//! `DESIGN.md` for the substitution rationale.

pub mod ba;
pub mod dblp_like;
pub mod patent_like;
pub mod synthetic;
pub mod wiki_like;

pub use ba::{estimate_power_law_exponent, BaConfig};
pub use dblp_like::DblpLikeConfig;
pub use patent_like::{PatentEgs, PatentLikeConfig};
pub use synthetic::SyntheticConfig;
pub use wiki_like::WikiLikeConfig;
