//! DBLP-like evolving co-authorship graph simulator.
//!
//! The paper's DBLP dataset is a sequence of *co-authorship* snapshots: the
//! snapshot of a date contains an (undirected) edge between two authors if
//! they co-authored any paper published before that date.  Edges are
//! therefore only ever added, the matrices derived from the snapshots are
//! symmetric, and successive snapshots are ~99.86 % similar.
//!
//! This simulator reproduces those characteristics: at every snapshot a
//! number of "papers" are published; each paper has a small author list drawn
//! with preferential attachment (prolific authors keep publishing) plus
//! occasional newcomers, and contributes a clique among its authors.

use crate::delta::GraphDelta;
use crate::digraph::DiGraph;
use crate::egs::EvolvingGraphSequence;
use rand::Rng;

/// Parameters of the DBLP-like co-authorship EGS simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DblpLikeConfig {
    /// Number of authors (nodes).
    pub n_authors: usize,
    /// Number of papers "published" before the first snapshot.
    pub initial_papers: usize,
    /// Number of papers published between successive snapshots.
    pub papers_per_snapshot: usize,
    /// Maximum number of authors per paper (uniform in `2..=max`).
    pub max_authors_per_paper: usize,
    /// Number of snapshots.
    pub n_snapshots: usize,
}

impl Default for DblpLikeConfig {
    /// Laptop-scale configuration with the paper's qualitative shape.
    fn default() -> Self {
        DblpLikeConfig {
            n_authors: 1_500,
            initial_papers: 1_800,
            papers_per_snapshot: 12,
            max_authors_per_paper: 4,
            n_snapshots: 80,
        }
    }
}

impl DblpLikeConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        DblpLikeConfig {
            n_authors: 150,
            initial_papers: 180,
            papers_per_snapshot: 5,
            max_authors_per_paper: 4,
            n_snapshots: 15,
        }
    }

    /// The paper-scale configuration (≈98 000 authors, 1000 snapshots).
    pub fn paper_scale() -> Self {
        DblpLikeConfig {
            n_authors: 97_931,
            initial_papers: 150_000,
            papers_per_snapshot: 70,
            max_authors_per_paper: 5,
            n_snapshots: 1_000,
        }
    }
}

/// Generates a DBLP-like (symmetric, growing) co-authorship EGS.
pub fn generate<R: Rng>(config: &DblpLikeConfig, rng: &mut R) -> EvolvingGraphSequence {
    assert!(config.n_authors > 3, "need at least four authors");
    assert!(
        config.max_authors_per_paper >= 2,
        "papers need at least two authors"
    );
    let mut productivity: Vec<usize> = vec![1; config.n_authors];
    let mut current = DiGraph::new(config.n_authors);
    // Papers before the first snapshot.
    for _ in 0..config.initial_papers {
        publish_paper(config, &mut current, &mut productivity, rng, None);
    }
    let mut egs = EvolvingGraphSequence::from_base(current.clone());
    for _ in 1..config.n_snapshots {
        let mut delta = GraphDelta::empty();
        for _ in 0..config.papers_per_snapshot {
            publish_paper(
                config,
                &mut current,
                &mut productivity,
                rng,
                Some(&mut delta),
            );
        }
        egs.push_delta(delta);
    }
    egs
}

/// Samples an author list and adds the paper's co-authorship clique.
fn publish_paper<R: Rng>(
    config: &DblpLikeConfig,
    graph: &mut DiGraph,
    productivity: &mut [usize],
    rng: &mut R,
    mut delta: Option<&mut GraphDelta>,
) {
    let n_authors = rng.gen_range(2..=config.max_authors_per_paper);
    let mut authors = Vec::with_capacity(n_authors);
    let mut guard = 0usize;
    while authors.len() < n_authors && guard < 100 {
        guard += 1;
        // 20% newcomers drawn uniformly, 80% preferential by productivity.
        let candidate = if rng.gen_bool(0.2) {
            rng.gen_range(0..config.n_authors)
        } else {
            sample_weighted(productivity, rng)
        };
        if !authors.contains(&candidate) {
            authors.push(candidate);
        }
    }
    for &a in &authors {
        productivity[a] += 1;
    }
    for i in 0..authors.len() {
        for j in i + 1..authors.len() {
            let (u, v) = (authors[i], authors[j]);
            let added_uv = graph.add_edge(u, v);
            let added_vu = graph.add_edge(v, u);
            if let Some(d) = delta.as_deref_mut() {
                if added_uv {
                    d.added.push((u, v));
                }
                if added_vu {
                    d.added.push((v, u));
                }
            }
        }
    }
}

fn sample_weighted<R: Rng>(weights: &[usize], rng: &mut R) -> usize {
    let total: usize = weights.iter().sum();
    if total == 0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshots_are_symmetric_and_growing() {
        let cfg = DblpLikeConfig::tiny();
        let egs = generate(&cfg, &mut StdRng::seed_from_u64(4));
        assert_eq!(egs.len(), cfg.n_snapshots);
        let first = egs.snapshot(0);
        let last = egs.snapshot(cfg.n_snapshots - 1);
        assert!(first.is_symmetric());
        assert!(last.is_symmetric());
        assert!(last.n_edges() > first.n_edges());
    }

    #[test]
    fn edges_are_never_removed() {
        let cfg = DblpLikeConfig::tiny();
        let egs = generate(&cfg, &mut StdRng::seed_from_u64(19));
        for i in 0..egs.len() - 1 {
            assert!(egs.delta(i).removed.is_empty());
        }
    }

    #[test]
    fn successive_snapshots_are_similar() {
        let cfg = DblpLikeConfig::tiny();
        let egs = generate(&cfg, &mut StdRng::seed_from_u64(7));
        assert!(egs.average_successive_similarity() > 0.95);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = DblpLikeConfig::tiny();
        let a = generate(&cfg, &mut StdRng::seed_from_u64(31));
        let b = generate(&cfg, &mut StdRng::seed_from_u64(31));
        assert_eq!(a.snapshot(5), b.snapshot(5));
    }

    #[test]
    fn prolific_authors_emerge() {
        let cfg = DblpLikeConfig::tiny();
        let egs = generate(&cfg, &mut StdRng::seed_from_u64(2));
        let last = egs.snapshot(cfg.n_snapshots - 1);
        let max_deg = (0..last.n_nodes())
            .map(|u| last.out_degree(u))
            .max()
            .unwrap();
        let avg = last.average_out_degree();
        assert!(max_deg as f64 > 2.0 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    #[should_panic(expected = "at least two authors")]
    fn rejects_single_author_papers() {
        let cfg = DblpLikeConfig {
            max_authors_per_paper: 1,
            ..DblpLikeConfig::tiny()
        };
        generate(&cfg, &mut StdRng::seed_from_u64(0));
    }
}
