//! Patent-citation-like EGS simulator for the paper's §7 case study.
//!
//! The paper analyses the NBER patent citation data: yearly snapshots of a
//! growing citation graph in which every patent belongs to a company.  The
//! case study seeds personalised PageRank at one subject company's patents
//! ("IBM") and tracks the proximity *rank* of other companies over the years;
//! one company ("HARRIS") rises steadily because its patents become ever more
//! entangled with the subject's.
//!
//! The NBER file is not bundled, so this simulator produces a growing
//! citation DAG with labelled companies and a configurable "rising" company
//! whose new patents increasingly cite (and are cited by patents close to)
//! the subject company.  The shape of Figure 11 — stable ranks for most
//! companies, a steady climb for the rising one — is therefore reproducible.

use crate::delta::GraphDelta;
use crate::digraph::DiGraph;
use crate::egs::EvolvingGraphSequence;
use rand::Rng;

/// Parameters of the patent-citation-like EGS simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PatentLikeConfig {
    /// Number of companies (including the subject and the rising company).
    pub n_companies: usize,
    /// Number of patents present in the first snapshot.
    pub initial_patents: usize,
    /// Total number of patents after the last snapshot (grows linearly).
    pub final_patents: usize,
    /// Number of yearly snapshots.
    pub n_snapshots: usize,
    /// Citations made by each newly granted patent.
    pub citations_per_patent: usize,
    /// Index of the subject company ("IBM" in the paper).
    pub subject_company: usize,
    /// Index of the rising company ("HARRIS" in the paper).
    pub rising_company: usize,
}

impl Default for PatentLikeConfig {
    fn default() -> Self {
        PatentLikeConfig {
            n_companies: 8,
            initial_patents: 400,
            final_patents: 1_600,
            n_snapshots: 21,
            citations_per_patent: 4,
            subject_company: 0,
            rising_company: 1,
        }
    }
}

impl PatentLikeConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        PatentLikeConfig {
            n_companies: 5,
            initial_patents: 80,
            final_patents: 300,
            n_snapshots: 8,
            citations_per_patent: 3,
            subject_company: 0,
            rising_company: 1,
        }
    }
}

/// A generated patent-citation EGS together with its company labelling.
#[derive(Debug, Clone)]
pub struct PatentEgs {
    /// The evolving citation graph; node = patent, edge = citation
    /// (citing → cited).
    pub egs: EvolvingGraphSequence,
    /// For every patent node, the company owning it.
    pub company_of_patent: Vec<usize>,
    /// Human-readable company names (`company 0`, `company 1`, …) with the
    /// subject and rising companies called out.
    pub company_names: Vec<String>,
    /// How many patents exist at each snapshot (earlier nodes are isolated
    /// until "granted").
    pub patents_at_snapshot: Vec<usize>,
}

impl PatentEgs {
    /// All patent nodes owned by `company` that exist at snapshot `t`.
    pub fn patents_of(&self, company: usize, snapshot: usize) -> Vec<usize> {
        let limit = self.patents_at_snapshot[snapshot];
        (0..limit)
            .filter(|&p| self.company_of_patent[p] == company)
            .collect()
    }
}

/// Generates a patent-citation-like EGS with company labels.
pub fn generate<R: Rng>(config: &PatentLikeConfig, rng: &mut R) -> PatentEgs {
    assert!(config.n_companies >= 3, "need at least three companies");
    assert!(config.subject_company < config.n_companies);
    assert!(config.rising_company < config.n_companies);
    assert_ne!(config.subject_company, config.rising_company);
    assert!(config.final_patents > config.initial_patents);
    assert!(config.n_snapshots >= 2);

    let n = config.final_patents;
    // Assign companies: the subject company owns a healthy share of patents so
    // PPR mass concentrates around it, the rest are spread evenly.
    let mut company_of_patent = Vec::with_capacity(n);
    for i in 0..n {
        let c = if i % 4 == 0 {
            config.subject_company
        } else {
            i % config.n_companies
        };
        company_of_patent.push(c);
    }

    let growth_per_step =
        (config.final_patents - config.initial_patents) / (config.n_snapshots - 1);
    let mut current = DiGraph::new(n);
    let mut granted = config.initial_patents;
    // Citations of the initial patent stock.
    for p in 1..granted {
        add_citations(
            config,
            &company_of_patent,
            &mut current,
            p,
            granted,
            0.0,
            rng,
            None,
        );
    }
    let mut patents_at_snapshot = vec![granted];
    let mut egs = EvolvingGraphSequence::from_base(current.clone());

    for step in 1..config.n_snapshots {
        let mut delta = GraphDelta::empty();
        // The rising company's affinity for the subject grows with time.
        let rising_affinity = step as f64 / config.n_snapshots as f64;
        // Grant the remaining patents on the final snapshot so the sequence
        // ends with exactly `final_patents` patents despite integer division.
        let new_until = if step == config.n_snapshots - 1 {
            n
        } else {
            (granted + growth_per_step).min(n)
        };
        for p in granted..new_until {
            add_citations(
                config,
                &company_of_patent,
                &mut current,
                p,
                granted.max(1),
                rising_affinity,
                rng,
                Some(&mut delta),
            );
        }
        granted = new_until;
        patents_at_snapshot.push(granted);
        egs.push_delta(delta);
    }

    let company_names = (0..config.n_companies)
        .map(|c| {
            if c == config.subject_company {
                "SUBJECT".to_string()
            } else if c == config.rising_company {
                "RISING".to_string()
            } else {
                format!("COMPANY-{c}")
            }
        })
        .collect();

    PatentEgs {
        egs,
        company_of_patent,
        company_names,
        patents_at_snapshot,
    }
}

#[allow(clippy::too_many_arguments)]
fn add_citations<R: Rng>(
    config: &PatentLikeConfig,
    company_of_patent: &[usize],
    graph: &mut DiGraph,
    patent: usize,
    citable: usize,
    rising_affinity: f64,
    rng: &mut R,
    mut delta: Option<&mut GraphDelta>,
) {
    if citable == 0 {
        return;
    }
    let company = company_of_patent[patent];
    for _ in 0..config.citations_per_patent {
        // A patent of the rising company cites the subject company's patents
        // with probability growing over time; everyone has some home bias.
        let target_company =
            if company == config.rising_company && rng.gen_bool(0.3 + 0.6 * rising_affinity) {
                Some(config.subject_company)
            } else if rng.gen_bool(0.4) {
                Some(company)
            } else {
                None
            };
        let cited = match target_company {
            Some(tc) => {
                // Rejection-sample a patent of the target company among
                // already-citable patents.
                let mut choice = None;
                for _ in 0..20 {
                    let cand = rng.gen_range(0..citable);
                    if company_of_patent[cand] == tc {
                        choice = Some(cand);
                        break;
                    }
                }
                choice.unwrap_or_else(|| rng.gen_range(0..citable))
            }
            None => rng.gen_range(0..citable),
        };
        if cited != patent && graph.add_edge(patent, cited) {
            if let Some(d) = delta.as_deref_mut() {
                d.added.push((patent, cited));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_growing_citation_graph() {
        let cfg = PatentLikeConfig::tiny();
        let p = generate(&cfg, &mut StdRng::seed_from_u64(6));
        assert_eq!(p.egs.len(), cfg.n_snapshots);
        let (first, last) = p.egs.first_last_edge_counts();
        assert!(last > first);
        assert_eq!(p.patents_at_snapshot.len(), cfg.n_snapshots);
        assert_eq!(*p.patents_at_snapshot.last().unwrap(), cfg.final_patents);
    }

    #[test]
    fn company_labels_cover_all_patents() {
        let cfg = PatentLikeConfig::tiny();
        let p = generate(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(p.company_of_patent.len(), cfg.final_patents);
        assert!(p.company_of_patent.iter().all(|&c| c < cfg.n_companies));
        assert_eq!(p.company_names.len(), cfg.n_companies);
        assert_eq!(p.company_names[cfg.subject_company], "SUBJECT");
        assert_eq!(p.company_names[cfg.rising_company], "RISING");
    }

    #[test]
    fn patents_of_respects_snapshot_limit() {
        let cfg = PatentLikeConfig::tiny();
        let p = generate(&cfg, &mut StdRng::seed_from_u64(9));
        let early = p.patents_of(cfg.subject_company, 0);
        let late = p.patents_of(cfg.subject_company, cfg.n_snapshots - 1);
        assert!(late.len() > early.len());
        assert!(early.iter().all(|&x| x < p.patents_at_snapshot[0]));
    }

    #[test]
    fn rising_company_cites_subject_more_over_time() {
        let cfg = PatentLikeConfig::tiny();
        let p = generate(&cfg, &mut StdRng::seed_from_u64(15));
        let last = p.egs.snapshot(cfg.n_snapshots - 1);
        // Count citations from RISING patents into SUBJECT patents among the
        // later half vs the earlier half of RISING's patents.
        let rising: Vec<usize> = (0..cfg.final_patents)
            .filter(|&i| p.company_of_patent[i] == cfg.rising_company)
            .collect();
        let half = rising.len() / 2;
        let count_into_subject = |patents: &[usize]| -> usize {
            patents
                .iter()
                .flat_map(|&u| last.successors(u).collect::<Vec<_>>())
                .filter(|&v| p.company_of_patent[v] == cfg.subject_company)
                .count()
        };
        let early_citations = count_into_subject(&rising[..half]);
        let late_citations = count_into_subject(&rising[half..]);
        assert!(
            late_citations >= early_citations,
            "late {late_citations} vs early {early_citations}"
        );
    }

    #[test]
    fn citations_only_point_to_existing_patents() {
        let cfg = PatentLikeConfig::tiny();
        let p = generate(&cfg, &mut StdRng::seed_from_u64(2));
        // In snapshot 0, no edge may touch a patent granted later.
        let g0 = p.egs.snapshot(0);
        let limit = p.patents_at_snapshot[0];
        for (u, v) in g0.edges() {
            assert!(u < limit && v < limit);
        }
    }

    #[test]
    #[should_panic(expected = "three companies")]
    fn rejects_too_few_companies() {
        let cfg = PatentLikeConfig {
            n_companies: 2,
            ..PatentLikeConfig::tiny()
        };
        generate(&cfg, &mut StdRng::seed_from_u64(0));
    }
}
