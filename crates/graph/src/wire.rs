//! Binary wire encoding of graph-layer durability state.
//!
//! The engine's write-ahead log and checkpoints persist [`GraphDelta`]s,
//! snapshot edge sets, and [`NodePartition`] assignments.  This module is
//! the shared little-endian codec for those payloads: a bump-pointer
//! [`WireWriter`] and a bounds-checked [`WireReader`] whose every read
//! returns a [`WireError`] instead of panicking — the reader's input is a
//! possibly-torn, possibly-corrupt file tail, so decoding must fail loudly
//! and recoverably, never by panic and never silently wrong.
//!
//! The format is deliberately boring: `u32`/`u64` little-endian integers,
//! `f64` as IEEE-754 bits, and length-prefixed sequences.  Versioning and
//! checksumming are the *container's* job (the engine's WAL records and
//! checkpoint files carry magic/version tags and CRCs around these
//! payloads); the codec itself is stable within a container version.

use crate::delta::GraphDelta;
use crate::digraph::DiGraph;
use crate::partition::NodePartition;
use std::fmt;

/// A decoding failure: the input was shorter than the payload it claims to
/// hold, or a declared count/id is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran past the end of the buffer.
    UnexpectedEnd {
        /// Byte offset of the failed read.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A decoded value violates a structural invariant (e.g. a node id at or
    /// beyond the declared universe size).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd {
                offset,
                needed,
                remaining,
            } => write!(
                f,
                "truncated payload at byte {offset}: needed {needed} bytes, {remaining} left"
            ),
            WireError::Invalid(msg) => write!(f, "invalid payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias.
pub type WireResult<T> = Result<T, WireError>;

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one `usize` as a `u64` (the on-disk format is
    /// pointer-width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends one `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed `usize` slice.
    pub fn put_usize_seq(&mut self, seq: &[usize]) {
        self.put_usize(seq.len());
        for &v in seq {
            self.put_usize(v);
        }
    }

    /// Appends a length-prefixed edge list.
    pub fn put_edges(&mut self, edges: &[(usize, usize)]) {
        self.put_usize(edges.len());
        for &(u, v) in edges {
            self.put_usize(u);
            self.put_usize(v);
        }
    }
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd {
                offset: self.pos,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one little-endian `u32`.
    pub fn get_u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads one little-endian `u64`.
    pub fn get_u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads one `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> WireResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid(format!("{v} overflows usize")))
    }

    /// Reads one `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length-prefixed `usize` sequence.
    pub fn get_usize_seq(&mut self) -> WireResult<Vec<usize>> {
        let len = self.get_usize()?;
        self.check_count(len, 8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_usize()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed edge list.
    pub fn get_edges(&mut self) -> WireResult<Vec<(usize, usize)>> {
        let len = self.get_usize()?;
        self.check_count(len, 16)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let u = self.get_usize()?;
            let v = self.get_usize()?;
            out.push((u, v));
        }
        Ok(out)
    }

    /// Rejects a declared element count whose minimal encoding would already
    /// overrun the buffer — so corrupt length prefixes fail fast instead of
    /// driving a near-unbounded allocation loop.
    fn check_count(&self, count: usize, min_bytes_each: usize) -> WireResult<()> {
        if count.saturating_mul(min_bytes_each) > self.remaining() {
            return Err(WireError::UnexpectedEnd {
                offset: self.pos,
                needed: count.saturating_mul(min_bytes_each),
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Encodes a delta as `added edges, removed edges` (both length-prefixed).
pub fn encode_delta(w: &mut WireWriter, delta: &GraphDelta) {
    w.put_edges(&delta.added);
    w.put_edges(&delta.removed);
}

/// Decodes a delta written by [`encode_delta`].
pub fn decode_delta(r: &mut WireReader<'_>) -> WireResult<GraphDelta> {
    let added = r.get_edges()?;
    let removed = r.get_edges()?;
    Ok(GraphDelta { added, removed })
}

/// Encodes a graph as `n_nodes, edge list`.
pub fn encode_graph(w: &mut WireWriter, graph: &DiGraph) {
    w.put_usize(graph.n_nodes());
    let edges: Vec<(usize, usize)> = graph.edges().collect();
    w.put_edges(&edges);
}

/// Decodes a graph written by [`encode_graph`], validating edge endpoints
/// against the declared universe.
pub fn decode_graph(r: &mut WireReader<'_>) -> WireResult<DiGraph> {
    let n = r.get_usize()?;
    let edges = r.get_edges()?;
    for &(u, v) in &edges {
        if u >= n || v >= n {
            return Err(WireError::Invalid(format!(
                "edge ({u}, {v}) outside the {n}-node universe"
            )));
        }
    }
    Ok(DiGraph::from_edges(n, edges))
}

/// Encodes a partition as its dense `node → shard` assignment vector.
pub fn encode_partition(w: &mut WireWriter, partition: &NodePartition) {
    w.put_usize_seq(partition.assignments());
}

/// Decodes a partition written by [`encode_partition`], validating that the
/// assignment forms the dense non-empty shard range the constructor demands.
pub fn decode_partition(r: &mut WireReader<'_>) -> WireResult<NodePartition> {
    let assignments = r.get_usize_seq()?;
    let k = assignments.iter().copied().max().map_or(1, |m| m + 1);
    let mut seen = vec![false; k];
    for &s in &assignments {
        seen[s] = true;
    }
    if !assignments.is_empty() && seen.iter().any(|&s| !s) {
        return Err(WireError::Invalid(format!(
            "partition assignment skips a shard id below {k}"
        )));
    }
    Ok(NodePartition::from_assignments(assignments))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = WireWriter::new();
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 7);
        w.put_usize(42);
        w.put_f64(-0.1);
        w.put_f64(f64::MIN_POSITIVE);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_fail_loudly() {
        let mut w = WireWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..5]);
        let err = r.get_u64().unwrap_err();
        assert!(matches!(
            err,
            WireError::UnexpectedEnd {
                needed: 8,
                remaining: 5,
                ..
            }
        ));
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn corrupt_length_prefix_fails_instead_of_allocating() {
        let mut w = WireWriter::new();
        w.put_usize(usize::MAX / 2); // absurd element count, no elements
        let bytes = w.into_bytes();
        let err = WireReader::new(&bytes).get_edges().unwrap_err();
        assert!(matches!(err, WireError::UnexpectedEnd { .. }));
        let err = WireReader::new(&bytes).get_usize_seq().unwrap_err();
        assert!(matches!(err, WireError::UnexpectedEnd { .. }));
    }

    #[test]
    fn delta_round_trips() {
        let delta = GraphDelta {
            added: vec![(0, 1), (3, 2)],
            removed: vec![(5, 0)],
        };
        let mut w = WireWriter::new();
        encode_delta(&mut w, &delta);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(decode_delta(&mut r).unwrap(), delta);
        assert!(r.is_exhausted());
    }

    #[test]
    fn graph_round_trips_and_validates() {
        let mut g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (4, 0)]);
        g.add_edge(2, 2);
        let mut w = WireWriter::new();
        encode_graph(&mut w, &g);
        let bytes = w.into_bytes();
        let decoded = decode_graph(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(decoded, g);
        // An out-of-universe edge is rejected, not constructed.
        let mut w = WireWriter::new();
        w.put_usize(2);
        w.put_edges(&[(0, 7)]);
        let bytes = w.into_bytes();
        let err = decode_graph(&mut WireReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
    }

    #[test]
    fn partition_round_trips_and_validates() {
        let p = NodePartition::from_assignments(vec![1, 0, 1, 2, 0]);
        let mut w = WireWriter::new();
        encode_partition(&mut w, &p);
        let bytes = w.into_bytes();
        let decoded = decode_partition(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(decoded, p);
        // A sparse shard range (id 2 without id 1) is rejected before the
        // constructor can panic on it.
        let mut w = WireWriter::new();
        w.put_usize_seq(&[0, 2, 0]);
        let bytes = w.into_bytes();
        let err = decode_partition(&mut WireReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
    }
}
