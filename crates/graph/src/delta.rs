//! Edge deltas between successive graph snapshots.
//!
//! An evolving graph sequence stores its first snapshot in full and every
//! later snapshot as a [`GraphDelta`] against its predecessor, reflecting the
//! paper's observation that successive snapshots share more than 99 % of
//! their edges.

use crate::digraph::DiGraph;

/// The set of edge insertions and deletions turning one snapshot into the next.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Directed edges added in the newer snapshot.
    pub added: Vec<(usize, usize)>,
    /// Directed edges removed in the newer snapshot.
    pub removed: Vec<(usize, usize)>,
}

impl GraphDelta {
    /// An empty delta (snapshot identical to its predecessor).
    pub fn empty() -> Self {
        GraphDelta::default()
    }

    /// Builds the delta turning `from` into `to`.
    ///
    /// # Panics
    /// Panics when the two graphs have different node counts (snapshots of an
    /// EGS share a fixed node universe).
    pub fn between(from: &DiGraph, to: &DiGraph) -> Self {
        assert_eq!(
            from.n_nodes(),
            to.n_nodes(),
            "snapshots must share a node universe"
        );
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for (u, v) in to.edges() {
            if !from.has_edge(u, v) {
                added.push((u, v));
            }
        }
        for (u, v) in from.edges() {
            if !to.has_edge(u, v) {
                removed.push((u, v));
            }
        }
        GraphDelta { added, removed }
    }

    /// Total number of edge changes, `|ΔE⁺| + |ΔE⁻|` in the paper's notation.
    pub fn size(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Returns `true` when the delta contains no changes.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Applies the delta to a graph in place (removals first, then additions).
    pub fn apply(&self, graph: &mut DiGraph) {
        for &(u, v) in &self.removed {
            graph.remove_edge(u, v);
        }
        for &(u, v) in &self.added {
            graph.add_edge(u, v);
        }
    }

    /// The inverse delta (applying it undoes `self`).
    pub fn inverse(&self) -> GraphDelta {
        GraphDelta {
            added: self.removed.clone(),
            removed: self.added.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_and_apply_roundtrip() {
        let a = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let b = DiGraph::from_edges(4, vec![(0, 1), (2, 3), (3, 0), (1, 3)]);
        let d = GraphDelta::between(&a, &b);
        assert_eq!(d.size(), 3); // removed (1,2); added (3,0),(1,3)
        assert_eq!(d.removed, vec![(1, 2)]);
        let mut a2 = a.clone();
        d.apply(&mut a2);
        assert_eq!(a2, b);
        // Inverse restores the original.
        let mut b2 = b.clone();
        d.inverse().apply(&mut b2);
        assert_eq!(b2, a);
    }

    #[test]
    fn empty_delta() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]);
        let d = GraphDelta::between(&g, &g);
        assert!(d.is_empty());
        assert_eq!(d, GraphDelta::empty());
        assert_eq!(d.size(), 0);
    }

    #[test]
    #[should_panic(expected = "node universe")]
    fn between_requires_same_node_count() {
        let a = DiGraph::new(2);
        let b = DiGraph::new(3);
        GraphDelta::between(&a, &b);
    }
}
