//! Edge deltas between successive graph snapshots.
//!
//! An evolving graph sequence stores its first snapshot in full and every
//! later snapshot as a [`GraphDelta`] against its predecessor, reflecting the
//! paper's observation that successive snapshots share more than 99 % of
//! their edges.

use crate::digraph::DiGraph;
use crate::matrix::MatrixKind;
use crate::partition::NodePartition;
use clude_sparse::SparsityPattern;
use std::collections::BTreeSet;

/// How a delta relates to a frozen factor structure: can it be absorbed by
/// rewriting values only, or does it demand structural maintenance?
///
/// Produced by [`GraphDelta::classify`].  The engine picks the maintenance
/// strategy per shard batch from this: value-only batches go down the
/// pattern-frozen refactor fast path, structural ones through per-entry
/// Bennett sweeps (which insert fill on demand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// Every matrix entry the delta touches already has a slot in the frozen
    /// structure — removed edges only zero existing entries, and degree
    /// rescales only rewrite entries that exist.
    ValueOnly,
    /// At least one added edge creates a matrix entry outside the frozen
    /// structure.
    Structural,
}

/// The set of edge insertions and deletions turning one snapshot into the next.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Directed edges added in the newer snapshot.
    pub added: Vec<(usize, usize)>,
    /// Directed edges removed in the newer snapshot.
    pub removed: Vec<(usize, usize)>,
}

impl GraphDelta {
    /// An empty delta (snapshot identical to its predecessor).
    pub fn empty() -> Self {
        GraphDelta::default()
    }

    /// Builds the delta turning `from` into `to`.
    ///
    /// # Panics
    /// Panics when the two graphs have different node counts (snapshots of an
    /// EGS share a fixed node universe).
    pub fn between(from: &DiGraph, to: &DiGraph) -> Self {
        assert_eq!(
            from.n_nodes(),
            to.n_nodes(),
            "snapshots must share a node universe"
        );
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for (u, v) in to.edges() {
            if !from.has_edge(u, v) {
                added.push((u, v));
            }
        }
        for (u, v) in from.edges() {
            if !to.has_edge(u, v) {
                removed.push((u, v));
            }
        }
        GraphDelta { added, removed }
    }

    /// Total number of edge changes, `|ΔE⁺| + |ΔE⁻|` in the paper's notation.
    pub fn size(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Returns `true` when the delta contains no changes.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Applies the delta to a graph in place (removals first, then additions).
    pub fn apply(&self, graph: &mut DiGraph) {
        for &(u, v) in &self.removed {
            graph.remove_edge(u, v);
        }
        for &(u, v) in &self.added {
            graph.add_edge(u, v);
        }
    }

    /// The inverse delta (applying it undoes `self`).
    pub fn inverse(&self) -> GraphDelta {
        GraphDelta {
            added: self.removed.clone(),
            removed: self.added.clone(),
        }
    }

    /// Composes `self` followed by `later` into a single delta, cancelling
    /// opposite changes: an edge added by `self` and removed by `later` (or
    /// vice versa) disappears from the merged delta entirely.
    ///
    /// For deltas that are valid against some graph `G` (adds of absent
    /// edges, removals of present edges), `merged.apply(G)` is equivalent to
    /// `self.apply(G); later.apply(G)`.
    ///
    /// # Order stability
    /// The merged edge lists are *canonical*: always sorted ascending and
    /// deduplicated, regardless of the order the input lists stored their
    /// edges in.  Two merges over inputs that are equal as edge *sets*
    /// therefore produce identical `GraphDelta` values — the engine's
    /// ingestor relies on this to keep coalesced batches deterministic.
    pub fn merge(&self, later: &GraphDelta) -> GraphDelta {
        let mut added: BTreeSet<(usize, usize)> = self.added.iter().copied().collect();
        let mut removed: BTreeSet<(usize, usize)> = self.removed.iter().copied().collect();
        for &e in &later.removed {
            // Removing an edge this delta added cancels the addition.
            if !added.remove(&e) {
                removed.insert(e);
            }
        }
        for &e in &later.added {
            // Re-adding an edge this delta removed cancels the removal.
            if !removed.remove(&e) {
                added.insert(e);
            }
        }
        GraphDelta {
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
        }
    }

    /// Classifies the delta against a frozen matrix structure, with pattern
    /// membership answered by a caller-supplied predicate over **global**
    /// matrix coordinates (the engine maps these through its shard-local
    /// reordering before probing the factor lists).
    ///
    /// Per [`MatrixKind`], an edge `(u, v)` owns these off-diagonal matrix
    /// positions: `(v, u)` for [`MatrixKind::RandomWalk`] (column `u` of
    /// `W`), `(u, v)` for [`MatrixKind::SymmetricLaplacian`].  Removing an
    /// edge zeroes its position and rescales entries that already exist, so
    /// removals are always value-only; an addition is value-only exactly when
    /// its position is already present (diagonals always are — both
    /// compositions store a full diagonal).
    pub fn classify_with(
        &self,
        kind: MatrixKind,
        mut in_pattern: impl FnMut(usize, usize) -> bool,
    ) -> DeltaClass {
        for &(u, v) in &self.added {
            let (i, j) = match kind {
                MatrixKind::RandomWalk { .. } => (v, u),
                MatrixKind::SymmetricLaplacian { .. } => (u, v),
            };
            if i != j && !in_pattern(i, j) {
                return DeltaClass::Structural;
            }
        }
        DeltaClass::ValueOnly
    }

    /// Classifies the delta against a [`SparsityPattern`] in global matrix
    /// coordinates.  See [`GraphDelta::classify_with`] for the rules.
    pub fn classify(&self, kind: MatrixKind, pattern: &SparsityPattern) -> DeltaClass {
        self.classify_with(kind, |i, j| pattern.contains(i, j))
    }

    /// Splits the delta by a node partition into per-shard intra deltas plus
    /// the cross-shard remainder.
    ///
    /// An edge change is *intra* when both endpoints live in the same shard;
    /// it lands in that shard's delta (indexed by shard id in the returned
    /// `Vec`).  Changes whose endpoints straddle two shards form the second
    /// return value.  The relative order of `self`'s edge lists is preserved
    /// within every output, and the outputs together hold exactly `self`'s
    /// changes: applying all per-shard deltas plus the remainder (in any
    /// order — they touch disjoint edges) equals applying `self`.
    ///
    /// # Panics
    /// Panics when an edge endpoint lies outside the partition's universe.
    pub fn split_by(&self, partition: &NodePartition) -> (Vec<GraphDelta>, GraphDelta) {
        let mut intra = vec![GraphDelta::empty(); partition.n_shards()];
        let mut cross = GraphDelta::empty();
        for &(u, v) in &self.added {
            if partition.is_intra(u, v) {
                intra[partition.shard_of(u)].added.push((u, v));
            } else {
                cross.added.push((u, v));
            }
        }
        for &(u, v) in &self.removed {
            if partition.is_intra(u, v) {
                intra[partition.shard_of(u)].removed.push((u, v));
            } else {
                cross.removed.push((u, v));
            }
        }
        (intra, cross)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_and_apply_roundtrip() {
        let a = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let b = DiGraph::from_edges(4, vec![(0, 1), (2, 3), (3, 0), (1, 3)]);
        let d = GraphDelta::between(&a, &b);
        assert_eq!(d.size(), 3); // removed (1,2); added (3,0),(1,3)
        assert_eq!(d.removed, vec![(1, 2)]);
        let mut a2 = a.clone();
        d.apply(&mut a2);
        assert_eq!(a2, b);
        // Inverse restores the original.
        let mut b2 = b.clone();
        d.inverse().apply(&mut b2);
        assert_eq!(b2, a);
    }

    #[test]
    fn empty_delta() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]);
        let d = GraphDelta::between(&g, &g);
        assert!(d.is_empty());
        assert_eq!(d, GraphDelta::empty());
        assert_eq!(d.size(), 0);
    }

    #[test]
    #[should_panic(expected = "node universe")]
    fn between_requires_same_node_count() {
        let a = DiGraph::new(2);
        let b = DiGraph::new(3);
        GraphDelta::between(&a, &b);
    }

    #[test]
    fn merge_cancels_add_followed_by_remove() {
        let first = GraphDelta {
            added: vec![(0, 1), (1, 2)],
            removed: vec![],
        };
        let second = GraphDelta {
            added: vec![],
            removed: vec![(0, 1)],
        };
        let merged = first.merge(&second);
        assert_eq!(merged.added, vec![(1, 2)]);
        assert!(merged.removed.is_empty());
        assert_eq!(merged.size(), 1);
    }

    #[test]
    fn merge_cancels_remove_followed_by_add() {
        let first = GraphDelta {
            added: vec![],
            removed: vec![(2, 3)],
        };
        let second = GraphDelta {
            added: vec![(2, 3), (3, 0)],
            removed: vec![],
        };
        let merged = first.merge(&second);
        assert_eq!(merged.added, vec![(3, 0)]);
        assert!(merged.removed.is_empty());
    }

    #[test]
    fn merge_of_inverse_is_empty() {
        let d = GraphDelta {
            added: vec![(0, 1), (2, 3)],
            removed: vec![(1, 2)],
        };
        assert!(d.merge(&d.inverse()).is_empty());
    }

    #[test]
    fn merge_agrees_with_sequential_application() {
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let first = GraphDelta {
            added: vec![(4, 0), (0, 2)],
            removed: vec![(1, 2)],
        };
        let second = GraphDelta {
            added: vec![(1, 2)],
            removed: vec![(4, 0), (3, 4)],
        };
        // Sequential application.
        let mut sequential = g.clone();
        first.apply(&mut sequential);
        second.apply(&mut sequential);
        // Merged application.
        let mut merged_g = g.clone();
        let merged = first.merge(&second);
        merged.apply(&mut merged_g);
        assert_eq!(sequential, merged_g);
        // (4,0) and (1,2) cancelled: only (0,2) added, only (3,4) removed.
        assert_eq!(merged.added, vec![(0, 2)]);
        assert_eq!(merged.removed, vec![(3, 4)]);
    }

    #[test]
    fn merge_output_is_order_stable() {
        // The same edge sets in different list orders must merge to the same
        // canonical (sorted, deduplicated) delta.
        let shuffled = GraphDelta {
            added: vec![(3, 1), (0, 2), (3, 1)],
            removed: vec![(2, 0), (1, 4)],
        };
        let sorted = GraphDelta {
            added: vec![(0, 2), (3, 1)],
            removed: vec![(1, 4), (2, 0)],
        };
        let later = GraphDelta {
            added: vec![(4, 4), (1, 4)],
            removed: vec![(3, 1)],
        };
        let a = shuffled.merge(&later);
        let b = sorted.merge(&later);
        assert_eq!(a, b);
        // And the outputs themselves are sorted ascending.
        assert!(a.added.windows(2).all(|w| w[0] < w[1]));
        assert!(a.removed.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn split_by_partitions_changes_and_preserves_order() {
        let p = NodePartition::contiguous(6, 2); // {0,1,2} | {3,4,5}
        let d = GraphDelta {
            added: vec![(5, 4), (0, 3), (1, 0), (2, 1)],
            removed: vec![(3, 5), (4, 0)],
        };
        let (intra, cross) = d.split_by(&p);
        assert_eq!(intra.len(), 2);
        assert_eq!(intra[0].added, vec![(1, 0), (2, 1)]);
        assert!(intra[0].removed.is_empty());
        assert_eq!(intra[1].added, vec![(5, 4)]);
        assert_eq!(intra[1].removed, vec![(3, 5)]);
        assert_eq!(cross.added, vec![(0, 3)]);
        assert_eq!(cross.removed, vec![(4, 0)]);
        // Nothing lost, nothing invented.
        let total: usize = intra.iter().map(GraphDelta::size).sum::<usize>() + cross.size();
        assert_eq!(total, d.size());
    }

    #[test]
    fn split_by_application_equals_direct_application() {
        let p = NodePartition::contiguous(6, 3);
        let base = DiGraph::from_edges(6, vec![(0, 1), (2, 3), (4, 5), (1, 4)]);
        let d = GraphDelta {
            added: vec![(1, 0), (3, 2), (5, 0), (2, 4)],
            removed: vec![(2, 3), (1, 4)],
        };
        let mut direct = base.clone();
        d.apply(&mut direct);
        let (intra, cross) = d.split_by(&p);
        let mut pieced = base;
        for shard_delta in &intra {
            shard_delta.apply(&mut pieced);
        }
        cross.apply(&mut pieced);
        assert_eq!(direct, pieced);
    }

    #[test]
    fn classify_removals_are_value_only() {
        let d = GraphDelta {
            added: vec![],
            removed: vec![(0, 1), (2, 3)],
        };
        // Even an empty pattern: removals never need new slots.
        let empty = SparsityPattern::empty(4, 4);
        assert_eq!(
            d.classify(MatrixKind::random_walk_default(), &empty),
            DeltaClass::ValueOnly
        );
        assert_eq!(
            d.classify(MatrixKind::symmetric_default(), &empty),
            DeltaClass::ValueOnly
        );
    }

    #[test]
    fn classify_addition_inside_pattern_is_value_only() {
        // RandomWalk: edge (u, v) lives at matrix position (v, u).
        let d = GraphDelta {
            added: vec![(0, 2)],
            removed: vec![(1, 0)],
        };
        let pattern = SparsityPattern::from_entries(3, 3, vec![(2, 0)]).unwrap();
        assert_eq!(
            d.classify(MatrixKind::random_walk_default(), &pattern),
            DeltaClass::ValueOnly
        );
        // Laplacian: edge (u, v) lives at (u, v), which is absent here.
        assert_eq!(
            d.classify(MatrixKind::symmetric_default(), &pattern),
            DeltaClass::Structural
        );
    }

    #[test]
    fn classify_addition_outside_pattern_is_structural() {
        let d = GraphDelta {
            added: vec![(1, 2)],
            removed: vec![],
        };
        let pattern = SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 1)]).unwrap();
        assert_eq!(
            d.classify(MatrixKind::random_walk_default(), &pattern),
            DeltaClass::Structural
        );
    }

    #[test]
    fn classify_self_loop_hits_always_present_diagonal() {
        // A self-loop maps to a diagonal position, which both compositions
        // always store — classified value-only regardless of the pattern.
        let d = GraphDelta {
            added: vec![(1, 1)],
            removed: vec![],
        };
        let empty = SparsityPattern::empty(3, 3);
        assert_eq!(
            d.classify(MatrixKind::random_walk_default(), &empty),
            DeltaClass::ValueOnly
        );
    }

    #[test]
    fn classify_with_sees_global_coordinates() {
        let d = GraphDelta {
            added: vec![(4, 5)],
            removed: vec![],
        };
        let mut probed = Vec::new();
        d.classify_with(MatrixKind::random_walk_default(), |i, j| {
            probed.push((i, j));
            true
        });
        assert_eq!(probed, vec![(5, 4)]);
    }

    #[test]
    fn merge_with_empty_is_identity_up_to_ordering() {
        let d = GraphDelta {
            added: vec![(1, 0), (0, 1)],
            removed: vec![(2, 2)],
        };
        let merged = d.merge(&GraphDelta::empty());
        assert_eq!(merged.added, vec![(0, 1), (1, 0)]);
        assert_eq!(merged.removed, vec![(2, 2)]);
        let merged2 = GraphDelta::empty().merge(&d);
        assert_eq!(merged2.added, vec![(0, 1), (1, 0)]);
    }
}
