//! Evolving graph sequences (EGS).
//!
//! An [`EvolvingGraphSequence`] is the paper's `G = {G_1, …, G_T}`: a sequence
//! of snapshot graphs over a fixed node universe, archived as a base snapshot
//! plus per-step deltas (the representation proposed for EGS archives in the
//! prior work the paper builds on, \[25\]).

use crate::delta::GraphDelta;
use crate::digraph::DiGraph;

/// A sequence of evolving graph snapshots with a shared node set.
#[derive(Debug, Clone)]
pub struct EvolvingGraphSequence {
    base: DiGraph,
    deltas: Vec<GraphDelta>,
}

impl EvolvingGraphSequence {
    /// Creates a sequence containing a single snapshot.
    pub fn from_base(base: DiGraph) -> Self {
        EvolvingGraphSequence {
            base,
            deltas: Vec::new(),
        }
    }

    /// Builds a sequence from fully materialised snapshots.
    ///
    /// # Panics
    /// Panics if `snapshots` is empty or node counts differ.
    pub fn from_snapshots(snapshots: Vec<DiGraph>) -> Self {
        assert!(!snapshots.is_empty(), "an EGS needs at least one snapshot");
        let base = snapshots[0].clone();
        let deltas = snapshots
            .windows(2)
            .map(|w| GraphDelta::between(&w[0], &w[1]))
            .collect();
        EvolvingGraphSequence { base, deltas }
    }

    /// Appends a snapshot described by its delta from the current last one.
    pub fn push_delta(&mut self, delta: GraphDelta) {
        self.deltas.push(delta);
    }

    /// Appends a fully materialised snapshot.
    pub fn push_snapshot(&mut self, snapshot: &DiGraph) {
        let last = self.snapshot(self.len() - 1);
        self.deltas.push(GraphDelta::between(&last, snapshot));
    }

    /// Number of snapshots `T`.
    pub fn len(&self) -> usize {
        self.deltas.len() + 1
    }

    /// Always `false`: a sequence holds at least its base snapshot.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of nodes shared by every snapshot.
    pub fn n_nodes(&self) -> usize {
        self.base.n_nodes()
    }

    /// The delta between snapshots `i` and `i + 1`.
    pub fn delta(&self, i: usize) -> &GraphDelta {
        &self.deltas[i]
    }

    /// Materialises snapshot `i` (0-based).
    ///
    /// # Panics
    /// Panics when `i >= self.len()`.
    pub fn snapshot(&self, i: usize) -> DiGraph {
        assert!(i < self.len(), "snapshot index out of range");
        let mut g = self.base.clone();
        for d in &self.deltas[..i] {
            d.apply(&mut g);
        }
        g
    }

    /// Iterates over all snapshots in order, materialising them one at a time
    /// (cost proportional to the base plus the deltas, not `T` full copies
    /// worth of work per step).
    pub fn snapshots(&self) -> SnapshotIter<'_> {
        SnapshotIter {
            egs: self,
            next: 0,
            current: self.base.clone(),
        }
    }

    /// Average matrix-edit-style similarity between successive snapshots,
    /// measured on edge sets: `2|E_i ∩ E_{i+1}| / (|E_i| + |E_{i+1}|)`.
    /// The paper reports 99.88 % (Wiki) and 99.86 % (DBLP) for this statistic.
    pub fn average_successive_similarity(&self) -> f64 {
        if self.deltas.is_empty() {
            return 1.0;
        }
        let mut total = 0.0;
        let mut prev_edges = self.base.n_edges();
        let mut current = self.base.clone();
        for d in &self.deltas {
            d.apply(&mut current);
            let curr_edges = current.n_edges();
            // |E_i ∩ E_{i+1}| = |E_i| - |removed ∩ E_i| = |E_i| - |removed that existed|.
            // Because deltas are exact, removed edges existed and added edges did not.
            let shared = prev_edges - d.removed.len();
            let denom = prev_edges + curr_edges;
            total += if denom == 0 {
                1.0
            } else {
                2.0 * shared as f64 / denom as f64
            };
            prev_edges = curr_edges;
        }
        total / self.deltas.len() as f64
    }

    /// Edge counts of the first and last snapshots (the headline statistics
    /// the paper reports for each dataset).
    pub fn first_last_edge_counts(&self) -> (usize, usize) {
        let first = self.base.n_edges();
        let last = self.snapshot(self.len() - 1).n_edges();
        (first, last)
    }
}

/// Iterator over materialised snapshots of an EGS.
#[derive(Debug)]
pub struct SnapshotIter<'a> {
    egs: &'a EvolvingGraphSequence,
    next: usize,
    current: DiGraph,
}

impl<'a> Iterator for SnapshotIter<'a> {
    type Item = DiGraph;

    fn next(&mut self) -> Option<DiGraph> {
        if self.next >= self.egs.len() {
            return None;
        }
        if self.next > 0 {
            self.egs.deltas[self.next - 1].apply(&mut self.current);
        }
        self.next += 1;
        Some(self.current.clone())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.egs.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl<'a> ExactSizeIterator for SnapshotIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_egs() -> EvolvingGraphSequence {
        let g1 = DiGraph::from_edges(4, vec![(0, 1), (1, 2)]);
        let g2 = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let g3 = DiGraph::from_edges(4, vec![(0, 1), (2, 3), (3, 0)]);
        EvolvingGraphSequence::from_snapshots(vec![g1, g2, g3])
    }

    #[test]
    fn from_snapshots_roundtrip() {
        let egs = sample_egs();
        assert_eq!(egs.len(), 3);
        assert_eq!(egs.n_nodes(), 4);
        assert_eq!(egs.snapshot(0).n_edges(), 2);
        assert_eq!(egs.snapshot(1).n_edges(), 3);
        assert_eq!(egs.snapshot(2).n_edges(), 3);
        assert!(egs.snapshot(2).has_edge(3, 0));
        assert!(!egs.snapshot(2).has_edge(1, 2));
    }

    #[test]
    fn snapshots_iterator_matches_random_access() {
        let egs = sample_egs();
        let via_iter: Vec<_> = egs.snapshots().collect();
        assert_eq!(via_iter.len(), 3);
        for (i, g) in via_iter.iter().enumerate() {
            assert_eq!(*g, egs.snapshot(i));
        }
        assert_eq!(egs.snapshots().len(), 3);
    }

    #[test]
    fn push_snapshot_and_delta() {
        let mut egs = EvolvingGraphSequence::from_base(DiGraph::from_edges(3, vec![(0, 1)]));
        let g2 = DiGraph::from_edges(3, vec![(0, 1), (1, 2)]);
        egs.push_snapshot(&g2);
        egs.push_delta(GraphDelta {
            added: vec![(2, 0)],
            removed: vec![(0, 1)],
        });
        assert_eq!(egs.len(), 3);
        let last = egs.snapshot(2);
        assert!(last.has_edge(2, 0) && last.has_edge(1, 2) && !last.has_edge(0, 1));
        assert_eq!(egs.delta(0).added, vec![(1, 2)]);
    }

    #[test]
    fn similarity_statistics() {
        let egs = sample_egs();
        let sim = egs.average_successive_similarity();
        // Transition 1: shared 2, sizes 2 and 3 -> 4/5. Transition 2: shared 2, sizes 3,3 -> 4/6.
        let expected = (0.8 + 2.0 / 3.0) / 2.0;
        assert!((sim - expected).abs() < 1e-12);
        assert_eq!(egs.first_last_edge_counts(), (2, 3));
        let single = EvolvingGraphSequence::from_base(DiGraph::new(2));
        assert_eq!(single.average_successive_similarity(), 1.0);
        assert!(!single.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one snapshot")]
    fn empty_snapshot_list_panics() {
        EvolvingGraphSequence::from_snapshots(vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn snapshot_out_of_range_panics() {
        sample_egs().snapshot(10);
    }
}
