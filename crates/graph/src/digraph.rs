//! Directed graph snapshots.
//!
//! A [`DiGraph`] is one snapshot `G_i` of an evolving graph sequence: a fixed
//! node set `0..n` and a set of directed edges.  Undirected graphs (e.g. the
//! DBLP-like co-authorship snapshots) are represented by storing both
//! directions of every edge.

use std::collections::BTreeSet;

/// A directed graph over the node set `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    /// Out-adjacency: for each node, the sorted set of successors.
    out: Vec<BTreeSet<usize>>,
    /// In-adjacency: for each node, the sorted set of predecessors.
    inc: Vec<BTreeSet<usize>>,
    n_edges: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            out: vec![BTreeSet::new(); n],
            inc: vec![BTreeSet::new(); n],
            n_edges: 0,
        }
    }

    /// Creates a graph from an edge list; duplicate and self-loop edges are
    /// ignored (graph measures in the paper operate on simple graphs).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Returns `true` if the edge `(u, v)` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.out[u].contains(&v)
    }

    /// Adds edge `(u, v)`.  Self-loops and duplicates are ignored.
    /// Returns `true` when the edge was newly added.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "edge endpoint out of bounds");
        if u == v || self.out[u].contains(&v) {
            return false;
        }
        self.out[u].insert(v);
        self.inc[v].insert(u);
        self.n_edges += 1;
        true
    }

    /// Removes edge `(u, v)`.  Returns `true` when it was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "edge endpoint out of bounds");
        if self.out[u].remove(&v) {
            self.inc[v].remove(&u);
            self.n_edges -= 1;
            true
        } else {
            false
        }
    }

    /// Adds the undirected edge `{u, v}` (both directions); returns the number
    /// of directed edges actually added (0, 1 or 2).
    pub fn add_undirected_edge(&mut self, u: usize, v: usize) -> usize {
        usize::from(self.add_edge(u, v)) + usize::from(self.add_edge(v, u))
    }

    /// Out-degree of node `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.out[u].len()
    }

    /// In-degree of node `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        self.inc[u].len()
    }

    /// Iterator over the successors of `u` in ascending order.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.out[u].iter().copied()
    }

    /// Iterator over the predecessors of `u` in ascending order.
    pub fn predecessors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.inc[u].iter().copied()
    }

    /// Iterator over every directed edge `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, succ)| succ.iter().map(move |&v| (u, v)))
    }

    /// Returns `true` when for every edge `(u, v)` the reverse edge is also
    /// present, i.e. the graph is effectively undirected.
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Average out-degree (`|E| / |V|`), the density statistic the paper
    /// reports for its datasets.
    pub fn average_out_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.n_edges as f64 / self.n as f64
        }
    }

    /// The out-degree histogram: entry `d` counts nodes with out-degree `d`.
    pub fn out_degree_histogram(&self) -> Vec<usize> {
        let max_d = (0..self.n).map(|u| self.out_degree(u)).max().unwrap_or(0);
        let mut hist = vec![0usize; max_d + 1];
        for u in 0..self.n {
            hist[self.out_degree(u)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_edges() {
        let mut g = DiGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1)); // duplicate
        assert!(!g.add_edge(1, 1)); // self loop
        assert_eq!(g.n_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_out_of_bounds_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (0, 2), (3, 1)]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.successors(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.predecessors(1).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn from_edges_ignores_duplicates_and_loops() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (0, 1), (2, 2)]);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn undirected_edges_and_symmetry() {
        let mut g = DiGraph::new(3);
        assert_eq!(g.add_undirected_edge(0, 1), 2);
        assert_eq!(g.add_undirected_edge(0, 1), 0);
        assert!(g.is_symmetric());
        g.add_edge(1, 2);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn statistics() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 2)]);
        assert!((g.average_out_degree() - 0.75).abs() < 1e-12);
        let hist = g.out_degree_histogram();
        assert_eq!(hist, vec![2, 1, 1]); // two nodes deg 0, one deg 1, one deg 2
        assert_eq!(DiGraph::new(0).average_out_degree(), 0.0);
    }
}
