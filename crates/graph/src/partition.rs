//! Partitioning the node universe into shards.
//!
//! The streaming engine shards its factor store by splitting the fixed node
//! universe `0..n` into disjoint groups.  A [`NodePartition`] is the
//! node→shard map plus, per shard, the sorted list of member nodes — so a
//! shard's principal submatrix can be addressed in *local* coordinates
//! `0..shard_len(s)` while deltas and queries arrive in *global* node ids.
//!
//! Construction lives in two places: the trivial [`NodePartition::contiguous`]
//! range split here, and the graph-locality-aware greedy growth (the
//! streaming analogue of the paper's α-clustering) in `clude::partition`.

use std::fmt;

/// A partition of the node universe `0..n` into `k` disjoint shards.
///
/// Every node belongs to exactly one shard; within a shard, nodes are kept in
/// ascending order and addressed by their *local index* (their rank in that
/// order).  The partition is immutable once built — the engine treats a
/// change of partition as a full re-shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePartition {
    /// `node → shard` map.
    shard_of: Vec<usize>,
    /// `node → local index` within its shard.
    local_of: Vec<usize>,
    /// `shard → sorted member nodes` (the inverse of `local_of`).
    nodes: Vec<Vec<usize>>,
}

impl NodePartition {
    /// Builds a partition from an explicit `node → shard` assignment.
    ///
    /// Shard ids must form the dense range `0..k` with every shard
    /// non-empty.
    ///
    /// # Panics
    /// Panics when a shard id is out of the dense range or a shard ends up
    /// empty.
    pub fn from_assignments(shard_of: Vec<usize>) -> Self {
        let k = shard_of.iter().copied().max().map_or(1, |m| m + 1);
        let mut nodes: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut local_of = vec![0usize; shard_of.len()];
        for (node, &s) in shard_of.iter().enumerate() {
            local_of[node] = nodes[s].len();
            nodes[s].push(node); // ascending by construction
        }
        for (s, members) in nodes.iter().enumerate() {
            assert!(
                !members.is_empty() || shard_of.is_empty(),
                "shard {s} of {k} has no nodes"
            );
        }
        NodePartition {
            shard_of,
            local_of,
            nodes,
        }
    }

    /// Splits `0..n` into `k` contiguous, balanced ranges (the first
    /// `n mod k` shards get one extra node).
    ///
    /// # Panics
    /// Panics when `k` is zero or exceeds `n` (for non-empty universes).
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(k >= 1, "need at least one shard");
        assert!(k <= n || n == 0, "cannot split {n} nodes into {k} shards");
        if n == 0 {
            return NodePartition {
                shard_of: Vec::new(),
                local_of: Vec::new(),
                nodes: vec![Vec::new()],
            };
        }
        let base = n / k;
        let extra = n % k;
        let mut shard_of = Vec::with_capacity(n);
        for s in 0..k {
            let len = base + usize::from(s < extra);
            shard_of.extend(std::iter::repeat_n(s, len));
        }
        NodePartition::from_assignments(shard_of)
    }

    /// The single-shard (monolithic) partition of `0..n`.
    pub fn singleton(n: usize) -> Self {
        NodePartition::contiguous(n, 1)
    }

    /// Number of nodes in the universe.
    pub fn n_nodes(&self) -> usize {
        self.shard_of.len()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.nodes.len()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        self.shard_of[node]
    }

    /// The local index of `node` within its shard.
    pub fn local_of(&self, node: usize) -> usize {
        self.local_of[node]
    }

    /// The sorted member nodes of `shard` (local index → global node).
    pub fn nodes_of(&self, shard: usize) -> &[usize] {
        &self.nodes[shard]
    }

    /// Number of nodes in `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.nodes[shard].len()
    }

    /// The dense `node → shard` assignment vector the partition was built
    /// from (the durable wire form: [`NodePartition::from_assignments`]
    /// reconstructs the partition bit-identically from it).
    pub fn assignments(&self) -> &[usize] {
        &self.shard_of
    }

    /// The sizes of all shards, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.nodes.iter().map(Vec::len).collect()
    }

    /// Returns `true` when both endpoints lie in the same shard.
    pub fn is_intra(&self, u: usize, v: usize) -> bool {
        self.shard_of[u] == self.shard_of[v]
    }
}

impl fmt::Display for NodePartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes over {} shards (sizes {:?})",
            self.n_nodes(),
            self.n_shards(),
            self.shard_sizes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_balanced_and_consistent() {
        let p = NodePartition::contiguous(10, 3);
        assert_eq!(p.n_nodes(), 10);
        assert_eq!(p.n_shards(), 3);
        assert_eq!(p.shard_sizes(), vec![4, 3, 3]);
        for node in 0..10 {
            let s = p.shard_of(node);
            let l = p.local_of(node);
            assert_eq!(p.nodes_of(s)[l], node);
        }
        assert!(p.is_intra(0, 3));
        assert!(!p.is_intra(3, 4));
    }

    #[test]
    fn from_assignments_round_trips() {
        let p = NodePartition::from_assignments(vec![1, 0, 1, 0, 2]);
        assert_eq!(p.n_shards(), 3);
        assert_eq!(p.nodes_of(0), &[1, 3]);
        assert_eq!(p.nodes_of(1), &[0, 2]);
        assert_eq!(p.nodes_of(2), &[4]);
        assert_eq!(p.local_of(3), 1);
        assert_eq!(p.shard_len(2), 1);
    }

    #[test]
    fn singleton_covers_everything_in_one_shard() {
        let p = NodePartition::singleton(5);
        assert_eq!(p.n_shards(), 1);
        assert_eq!(p.nodes_of(0), &[0, 1, 2, 3, 4]);
        // Local and global coordinates coincide.
        for node in 0..5 {
            assert_eq!(p.local_of(node), node);
        }
    }

    #[test]
    fn empty_universe_is_allowed() {
        let p = NodePartition::contiguous(0, 1);
        assert_eq!(p.n_nodes(), 0);
        assert_eq!(p.n_shards(), 1);
        assert!(p.nodes_of(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_shards_than_nodes_panics() {
        NodePartition::contiguous(2, 3);
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn sparse_shard_ids_panic() {
        // Shard 1 is skipped.
        NodePartition::from_assignments(vec![0, 2, 0]);
    }
}
